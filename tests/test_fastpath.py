"""Tests for the columnar batch-decision fast path.

Three contracts, each pinned property-style:

* **Byte identity** — the fast path must reproduce the scalar event
  loop bit for bit: admission logs, float-exact profit accumulation,
  policy stats (including the dual ``max_gate`` trajectory), final
  loads, dual certificates, journal bytes — across seeds, policies,
  batch splits and shard-sliced views.
* **Exact-maximal segmentation** — :func:`conflict_free_runs` must cut
  exactly at the first footprint overlap: any finer split is sound but
  wastes batching, any coarser split would reorder conflicting
  decisions.
* **Batched ledger ops** — ``admit_many`` / ``release_many`` must be
  whole-batch atomic (a failing entry leaves no half-applied load) and
  leave the ledger in a state its own ``verify()`` accepts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Demand, TreeNetwork, TreeProblem
from repro.online import (
    CapacityLedger,
    TraceArrays,
    conflict_free_runs,
    generate_trace,
    geometry_of,
    make_policy,
)
from repro.session.kernel import AdmissionSession, certificate_of
from repro.sharding.planner import ShardPlanner

POLICIES = [
    ("greedy-threshold", {}),
    ("greedy-threshold", {"threshold": 0.5}),
    ("dual-gated", {}),
    ("dual-gated", {"eta": 0.5}),
]


def _trace(topology="line", events=1500, seed=0, **kw):
    wl = {"n_slots": 256} if topology == "line" else {"n": 256}
    return generate_trace(topology, events=events, process="poisson",
                          seed=seed, departure_prob=0.35, workload=wl, **kw)


def _signature(session, policy_name):
    """Everything decision-dependent about a finished feed, bit-exact."""
    led = session.ledger
    sig = {
        "log": list(led.admission_log),
        "profit": led._profit_admitted.hex(),
        "stats": dict(session.policy.stats),
        "admitted": sorted(led._admitted.items()),
        "load": led.active._load.tobytes(),
        "ever": sorted(led._ever_admitted),
    }
    if policy_name == "dual-gated":
        sig["cert"] = repr(certificate_of(session))
    return sig


def _feed_sig(trace, policy_name, params, *, fastpath, splits=None):
    policy = make_policy(policy_name, **params)
    session = AdmissionSession(trace.problem, policy,
                               trace_meta=trace.meta, fastpath=fastpath)
    events = trace.events
    if splits is None:
        session.feed_many(events)
    else:
        lo = 0
        for size in splits:
            session.feed_many(events[lo:lo + size])
            lo += size
        session.feed_many(events[lo:])
    sig = _signature(session, policy_name)
    session.close(verify=True)
    return sig


# ----------------------------------------------------------------------
# Byte identity
# ----------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("policy_name,params", POLICIES)
    @pytest.mark.parametrize("topology", ["line", "tree"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_replay_identity(self, topology, seed, policy_name, params):
        trace = _trace(topology, seed=seed)
        scalar = _feed_sig(trace, policy_name, params, fastpath=False)
        fast = _feed_sig(trace, policy_name, params, fastpath=True)
        assert fast == scalar

    @pytest.mark.parametrize("policy_name,params",
                             [("greedy-threshold", {}), ("dual-gated", {})])
    def test_batch_split_invariance(self, policy_name, params):
        """Identical bytes no matter how the stream is chopped into
        feed_many calls (chunk boundaries are forced run boundaries —
        a finer split, which must not change a single decision)."""
        trace = _trace("line", seed=4)
        ref = _feed_sig(trace, policy_name, params, fastpath=False)
        for splits in ([1, 2, 3, 5, 8], [7] * 50, [1] * 40, [900]):
            got = _feed_sig(trace, policy_name, params,
                            fastpath=True, splits=splits)
            assert got == ref, f"splits {splits[:5]}... diverged"

    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("policy_name,params",
                             [("greedy-threshold", {}), ("dual-gated", {})])
    def test_shard_sliced_views(self, shards, policy_name, params):
        """The fast path is byte-identical on shard-sliced subproblems
        (densified demand ids, sliced conflict index) — the exact views
        the streamed sharded driver feeds."""
        trace = _trace("tree", seed=5)
        plan = ShardPlanner("subtree").plan(trace.problem, shards)
        for s in range(shards):
            sub = plan.subtrace(s, trace)
            if not sub.events:
                continue
            scalar = _feed_sig(sub, policy_name, params, fastpath=False)
            fast = _feed_sig(sub, policy_name, params, fastpath=True)
            assert fast == scalar, f"shard {s}/{shards} diverged"

    def test_journal_bytes_stable(self, tmp_path):
        """The service's journal writes the same bytes whether or not
        the session engages the fast path (events are journaled before
        any state changes; checkpoints snapshot identical decisions)."""
        from repro.io import event_to_dict
        from repro.service import AdmissionService

        trace = _trace("line", events=600, seed=6)
        dicts = [event_to_dict(ev) for ev in trace.events]
        paths = {}
        for label, force_scalar in (("fast", False), ("scalar", True)):
            path = tmp_path / f"{label}.bin"
            svc = AdmissionService(trace, "greedy-threshold",
                                   journal_path=str(path), fmt="binary",
                                   checkpoint_every=200)
            if force_scalar:
                svc.session._fast = None
            for i in range(0, len(dicts), 64):
                resp = svc.handle({"op": "feed",
                                   "events": dicts[i:i + 64]})
                assert resp["ok"], resp
            svc.close(verify=True)
            paths[label] = path
        assert paths["fast"].read_bytes() == paths["scalar"].read_bytes()

    def test_fastpath_engages_and_counts(self):
        trace = _trace("line", seed=7)
        policy = make_policy("greedy-threshold")
        session = AdmissionSession(trace.problem, policy,
                                   trace_meta=trace.meta, fastpath=True)
        session.feed_many(trace.events)
        stats = session.fastpath_stats
        assert stats["enabled"]
        assert stats["runs"] > 0
        assert stats["batched_events"] > 0
        assert stats["max_run_len"] >= 2
        assert (stats["batched_events"] + stats["scalar_fallbacks"]
                == len(trace.events))
        session.close(verify=True)

    def test_scalar_session_reports_disabled(self):
        trace = _trace("line", events=200, seed=7)
        policy = make_policy("greedy-threshold")
        session = AdmissionSession(trace.problem, policy,
                                   trace_meta=trace.meta, fastpath=False)
        session.feed_many(trace.events)
        stats = session.fastpath_stats
        assert not stats["enabled"]
        assert stats["runs"] == 0 and stats["batched_events"] == 0
        session.close(verify=True)

    def test_history_policy_stays_scalar(self):
        """dual-gated with history snapshots must not engage (the batch
        kernel cannot reproduce per-event history)."""
        trace = _trace("line", events=200, seed=8)
        policy = make_policy("dual-gated", history=True)
        session = AdmissionSession(trace.problem, policy,
                                   trace_meta=trace.meta, fastpath=True)
        session.feed_many(trace.events)
        assert not session.fastpath_stats["enabled"]
        session.close(verify=True)


# ----------------------------------------------------------------------
# Exact-maximal run segmentation
# ----------------------------------------------------------------------


def _reference_runs(ta, lo, hi):
    """Brute-force greedy segmentation over explicit footprint sets:
    cut exactly when an event's footprint intersects the running
    union.  The definitional reference the vectorized segmenter must
    match run for run."""
    indptr = ta.fp_indptr
    runs = []
    start = lo
    seen: set = set()
    for i in range(lo, hi):
        fp = set(ta.fp_edges[indptr[i]:indptr[i + 1]].tolist())
        if seen & fp:
            runs.append((start, i))
            start = i
            seen = set()
        seen |= fp
    runs.append((start, hi))
    return runs


class TestRunSegmenter:
    @pytest.mark.parametrize("topology", ["line", "tree"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exactly_maximal(self, topology, seed):
        trace = _trace(topology, seed=seed)
        geom = geometry_of(CapacityLedger(trace.problem))
        ta = TraceArrays.from_events(trace.events, geom)
        got = conflict_free_runs(ta)
        assert got == _reference_runs(ta, 0, len(ta))

    @pytest.mark.parametrize("seed", [0, 2])
    def test_exactly_maximal_on_stretches(self, seed):
        """The segmenter is called on sub-stretches between unbatchable
        events; maximality must hold for arbitrary [lo, hi)."""
        trace = _trace("line", events=400, seed=seed)
        geom = geometry_of(CapacityLedger(trace.problem))
        ta = TraceArrays.from_events(trace.events, geom)
        n = len(ta)
        for lo, hi in [(0, n), (1, n - 1), (n // 3, 2 * n // 3),
                       (5, 6), (0, 1)]:
            assert conflict_free_runs(ta, lo, hi) == \
                _reference_runs(ta, lo, hi)

    def test_shard_sliced_views(self):
        trace = _trace("tree", seed=9)
        plan = ShardPlanner("subtree").plan(trace.problem, 2)
        for s in range(2):
            sub = plan.subtrace(s, trace)
            if not sub.events:
                continue
            geom = geometry_of(CapacityLedger(sub.problem))
            ta = TraceArrays.from_events(sub.events, geom)
            assert conflict_free_runs(ta) == _reference_runs(ta, 0, len(ta))

    def test_single_edge_degenerate_routes(self):
        """Every route is the same single edge: every pair of demand
        events conflicts, so every run has length exactly one."""
        from repro.online.events import Arrival

        net = TreeNetwork(2, [(0, 1)], network_id=0)
        problem = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(i, 0, 1, 1.0, height=0.3) for i in range(4)],
        )
        geom = geometry_of(CapacityLedger(problem))
        events = [Arrival(float(t), t % 4) for t in range(8)]
        ta = TraceArrays.from_events(events, geom)
        runs = conflict_free_runs(ta)
        assert runs == [(i, i + 1) for i in range(8)]
        assert runs == _reference_runs(ta, 0, len(ta))

    def test_same_demand_always_conflicts(self):
        """The sentinel pseudo-edge: an arrival and departure of one
        demand must never share a run even if its route is empty-ish or
        conflicts with nothing else."""
        from repro.online.events import Arrival, Departure

        trace = _trace("line", events=50, seed=3)
        geom = geometry_of(CapacityLedger(trace.problem))
        events = [Arrival(0.0, 0), Departure(1.0, 0),
                  Arrival(2.0, 0), Departure(3.0, 0)]
        ta = TraceArrays.from_events(events, geom)
        assert conflict_free_runs(ta) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_disjoint_stream_is_one_run(self):
        """Arrivals of pairwise route-disjoint demands batch into one
        maximal run (a finer split would be sound but is a regression)."""
        from repro.online.events import Arrival

        net = TreeNetwork(5, [(0, 1), (1, 2), (2, 3), (3, 4)],
                          network_id=0)
        problem = TreeProblem(
            n=5, networks=[net],
            demands=[Demand(0, 0, 1, 1.0, height=0.3),
                     Demand(1, 1, 2, 1.0, height=0.3),
                     Demand(2, 2, 3, 1.0, height=0.3),
                     Demand(3, 3, 4, 1.0, height=0.3)],
        )
        geom = geometry_of(CapacityLedger(problem))
        events = [Arrival(float(d), d) for d in range(4)]
        ta = TraceArrays.from_events(events, geom)
        assert conflict_free_runs(ta) == [(0, 4)]


# ----------------------------------------------------------------------
# Batched ledger ops: atomicity + verify() cross-check
# ----------------------------------------------------------------------


def _ledger_state(led):
    return (led.active._load.tobytes(), sorted(led._admitted.items()),
            list(led.admission_log), led._profit_admitted.hex())


class TestBatchedLedgerOps:
    def _disjoint_batch(self, ledger, k=8):
        """Up to ``k`` admissible instances with pairwise-disjoint
        routes and distinct demands (the admit_many contract)."""
        taken: set = set()
        batch = []
        geom = geometry_of(ledger)
        for d in range(ledger.problem.num_demands):
            if len(batch) >= k:
                break
            cands = ledger.candidates(d)
            if not len(cands):
                continue
            iid = int(cands[0])
            lo, hi = geom.rr_indptr[
                geom.cand_indptr[d]], geom.rr_indptr[geom.cand_indptr[d] + 1]
            route = set(geom.rr_edges[lo:hi].tolist())
            if route & taken or not route:
                continue
            if ledger.active.blocked(iid):
                continue
            taken |= route
            batch.append((d, iid))
        return batch

    def test_admit_many_then_verify(self):
        trace = _trace("line", events=100, seed=11)
        ledger = CapacityLedger(trace.problem)
        batch = self._disjoint_batch(ledger)
        assert len(batch) >= 2
        ledger.admit_many([iid for _, iid in batch])
        ledger.verify()
        for d, iid in batch:
            assert ledger.is_admitted(d)
            assert ledger.admitted_instance(d) == iid

    def test_release_many_then_verify(self):
        trace = _trace("line", events=100, seed=11)
        ledger = CapacityLedger(trace.problem)
        batch = self._disjoint_batch(ledger)
        ledger.admit_many([iid for _, iid in batch])
        released = [d for d, _ in batch[::2]]
        ledger.release_many(released)
        ledger.verify()
        for d in released:
            assert not ledger.is_admitted(d)
            assert ledger.was_admitted(d)
        for d, _ in batch[1::2]:
            assert ledger.is_admitted(d)

    def test_admit_many_matches_scalar_admits(self):
        """One batched admit == the same admits one at a time, bit for
        bit (loads, logs, profit float sequence)."""
        trace = _trace("line", events=100, seed=12)
        batch = self._disjoint_batch(CapacityLedger(trace.problem))
        iids = [iid for _, iid in batch]
        led_batch = CapacityLedger(trace.problem)
        led_batch.admit_many(iids)
        led_scalar = CapacityLedger(trace.problem)
        for iid in iids:
            led_scalar.admit(iid)
        assert _ledger_state(led_batch) == _ledger_state(led_scalar)

    def test_admit_many_rejects_duplicate_demand_atomically(self):
        trace = _trace("line", events=100, seed=13)
        ledger = CapacityLedger(trace.problem)
        batch = self._disjoint_batch(ledger)
        d0, iid0 = batch[0]
        ledger.admit(iid0)
        before = _ledger_state(ledger)
        with pytest.raises(ValueError, match="already admitted"):
            ledger.admit_many([iid for _, iid in batch])
        assert _ledger_state(ledger) == before
        ledger.verify()

    def test_admit_many_rejects_infeasible_atomically(self):
        """A mid-batch capacity failure must leave no half-applied
        load: the single-edge problem is saturated first, then a batch
        whose later entry no longer fits is rejected whole."""
        net = TreeNetwork(2, [(0, 1)], network_id=0)
        problem = TreeProblem(
            n=2, networks=[net],
            demands=[Demand(i, 0, 1, 1.0, height=0.6) for i in range(3)],
        )
        ledger = CapacityLedger(problem)
        cand = {d: int(ledger.candidates(d)[0]) for d in range(3)}
        ledger.admit(cand[0])  # load 0.6 of 1.0
        before = _ledger_state(ledger)
        # Demand 1 alone would fit nothing (0.6 + 0.6 > 1), so the
        # batch [1, 2] must fail validation and change nothing.
        with pytest.raises(ValueError, match="no longer fits"):
            ledger.admit_many([cand[1], cand[2]])
        assert _ledger_state(ledger) == before
        ledger.verify()

    def test_release_many_rejects_unknown_atomically(self):
        trace = _trace("line", events=100, seed=14)
        ledger = CapacityLedger(trace.problem)
        batch = self._disjoint_batch(ledger)
        ledger.admit_many([iid for _, iid in batch])
        before = _ledger_state(ledger)
        bogus = [batch[0][0], 10_000_000]
        with pytest.raises(KeyError, match="not admitted"):
            ledger.release_many(bogus)
        assert _ledger_state(ledger) == before
        ledger.verify()
