"""Online admission-control throughput benchmark.

Replays seeded Poisson traces of 10k and 100k events (2k in smoke mode)
through each admission policy — non-preemptive and preemptive alike —
and records events/second, per-event latency percentiles, acceptance,
realized profit, and for the preemptive policies eviction counts,
forfeited profit and penalty-adjusted profit.  Results are written as
JSON (``BENCH_online.json``) so later changes can track the online hot
path the way ``BENCH_hotpath.json`` tracks the offline one.

The batch-resolve policy runs with the ``greedy`` registry solver at a
1024-arrival cadence — the exact solver is an offline benchmark, not a
throughput policy.  Verification of the final admitted set stays ON:
feasibility checking is part of the work a production admission layer
cannot skip.

A second table tracks the **service layer**: the same trace is pushed
through :class:`~repro.service.AdmissionService` one request/response
round trip at a time — once without a journal and once journaling every
event to a temp file — and compared against the in-process replay, so
the dict-protocol and write-ahead-journal overheads are tracked
explicitly.

An **observability** row replays the same trace with the flight
recorder off and on (interleaved, best-of-N) and records
``obs_overhead_ratio`` — the CI smoke gate fails above 1.25×, keeping
the always-compiled-in instrumentation honest about its cost.  (The
columnar fast path cut the converged overhead from ~1.10× to ~1.03×,
but it also cut the smoke replay under 20ms, where shared CI runners
cannot resolve better than ±10–15%; the gate is sized to catch real
instrumentation regressions, which cost 1.5× and up.)

A third table tracks the **sharded admission engine**: one Poisson
tree trace with a targeted boundary fraction (the shard-aware
``boundary_fraction`` workload knob) is replayed through
:class:`~repro.sharding.ShardedDriver` at 1/2/4 shards, recording the
boundary (cut-crossing) fraction and throughput two ways — single-host
wall clock, and the *critical path* (slowest shard replay plus the
serialized absorb hand-off and boundary phase), which is the rate an
N-worker deployment sustains and converges to wall clock on an N-core
host.  The headline
``events_per_sec`` of a sharded row is the critical-path rate.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_online.py [--smoke] [-o OUT]
"""

from __future__ import annotations

import argparse
import json
import sys

POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 1024}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


#: Policies with a registered columnar batch kernel: these rows run
#: twice (fast path on and off, interleaved best-of-N) and report the
#: on/off speedup the CI gate tracks.
FASTPATH_POLICIES = {"greedy-threshold", "dual-gated"}

#: Interleaved repetitions for the fastpath on/off cells (both sides
#: measured back to back inside each rep, so machine drift cancels).
FASTPATH_REPS = 3


def run_online_bench(smoke: bool = False, out_path: str | None = None) -> dict:
    """Run every policy over every trace size; return the report dict."""
    from repro.online import generate_trace, make_policy, replay

    sizes = [2_000] if smoke else [10_000, 100_000]
    report: dict = {"smoke": smoke, "cases": {}}
    scalar_total = fast_total = 0.0
    for events in sizes:
        trace = generate_trace(
            "line", events=events, process="poisson", seed=0,
            departure_prob=0.35,
            # Scale the timeline with the stream so the benchmark keeps
            # exercising admissions, not just saturated-reject probes.
            workload={"n_slots": max(512, events // 8)},
        )
        case: dict = {
            "events": len(trace.events),
            "arrivals": trace.num_arrivals,
            "departures": trace.num_departures,
            "instances": len(trace.problem.instances()),
            "policies": {},
        }
        for name, kwargs in POLICIES:
            if name in FASTPATH_POLICIES:
                # Fast path on vs off, interleaved: decisions are
                # byte-identical, so the off row is purely the scalar
                # baseline cost of the same stream.
                result = scalar = None
                fast_s = scalar_s = float("inf")
                for _ in range(FASTPATH_REPS):
                    r = replay(trace, make_policy(name, **kwargs),
                               fastpath=True)
                    if r.metrics.elapsed_s < fast_s:
                        fast_s, result = r.metrics.elapsed_s, r
                    r = replay(trace, make_policy(name, **kwargs),
                               fastpath=False)
                    if r.metrics.elapsed_s < scalar_s:
                        scalar_s, scalar = r.metrics.elapsed_s, r
                scalar_total += scalar_s
                fast_total += fast_s
            else:
                result, scalar = replay(trace, make_policy(name, **kwargs)), None
            m = result.metrics
            case["policies"][name] = {
                "events_per_sec": m.events_per_sec,
                "elapsed_s": m.elapsed_s,
                "accepted": m.accepted,
                "acceptance_ratio": m.acceptance_ratio,
                "realized_profit": m.realized_profit,
                "evictions": m.evictions,
                "forfeited_profit": m.forfeited_profit,
                "penalty_paid": m.penalty_paid,
                "penalty_adjusted_profit": m.penalty_adjusted_profit,
                "latency_p50_us": m.latency_p50_us,
                "latency_p99_us": m.latency_p99_us,
            }
            if scalar is not None:
                sm = scalar.metrics
                case["policies"][name].update({
                    "scalar_events_per_sec": sm.events_per_sec,
                    "fastpath_speedup": (sm.elapsed_s / m.elapsed_s
                                         if m.elapsed_s > 0 else None),
                })
                assert sm.accepted == m.accepted
                assert sm.realized_profit == m.realized_profit
        report["cases"][str(events)] = case
    # The headline the CI gate tracks: aggregate scalar / fast feed
    # time over the full corpus (every kernel policy at every size) —
    # per-cell ratios ride in the rows above.
    report["fastpath_speedup_ratio"] = (
        scalar_total / fast_total if fast_total > 0 else None)
    report["service"] = run_service_bench(smoke=smoke)
    report["obs"] = run_obs_overhead_bench(smoke=smoke)
    report["sharding"] = run_sharding_bench(smoke=smoke)
    report["serving"] = run_concurrent_clients_bench(smoke=smoke)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
    return report


#: Batch size of the ``feed`` op rows (matches run_remaining's default).
FEED_BATCH = 256

#: Group-commit window of the fast-durability rows.
SYNC_WINDOW = 64


def run_service_bench(smoke: bool = False) -> dict:
    """Sustained request/response throughput vs in-process replay.

    Every event crosses the service's dict protocol; journaled rows
    additionally write-ahead-log each event to a temp file.  The
    ``overhead`` ratios are (in-process rate) / (service rate) — how
    much the request/response framing and the journal cost on top of
    the raw kernel.  The rows walk the durability fast path one
    optimization at a time: JSON-lines journal committed per record
    (the PR-5 baseline), the binary codec, a group-commit window, and
    finally the batched ``feed`` op — whose ratio is recorded as
    ``journal_overhead_ratio``, the number the CI gate tracks
    (target <= 2.0x, fail > 2.5x).  The gate was 1.5x when the
    in-process denominator was the scalar event loop (~65k ev/s, ratio
    1.22x); the columnar fast path tripled the denominator while the
    batched-feed row "only" doubled (journal fsync + codec are
    per-batch fixed costs the kernel speedup cannot shrink), so the
    same serving path now measures ~1.7x.  The gate is re-anchored to
    that baseline — it still catches a journaling regression, which
    moves the ratio multiplicatively.

    A ``resume`` section times the warm restart against the same
    journal three ways — full-history replay, checkpoint + tail, and
    compacted — showing restart cost proportional to the
    post-checkpoint tail, not total journal length.
    """
    import os
    import tempfile
    import time

    from repro.io import event_to_dict, scan_journal
    from repro.online import generate_trace, make_policy, replay
    from repro.service import AdmissionService

    events = 2_000 if smoke else 20_000
    reps = 3  # best-of-N: the rates here gate CI, so damp scheduler noise
    trace = generate_trace(
        "line", events=events, process="poisson", seed=0,
        departure_prob=0.35, workload={"n_slots": max(512, events // 8)},
    )
    event_dicts = [event_to_dict(ev) for ev in trace.events]
    submit_reqs = [{"op": "submit", "event": d} for d in event_dicts]
    feed_reqs = [{"op": "feed", "events": event_dicts[i:i + FEED_BATCH]}
                 for i in range(0, len(event_dicts), FEED_BATCH)]
    configs = [
        ("service", False, {}, submit_reqs),
        ("service+journal", True, {}, submit_reqs),
        ("service+journal-binary", True, {"fmt": "binary"}, submit_reqs),
        ("service+group-commit", True,
         {"fmt": "binary", "sync_window": SYNC_WINDOW}, submit_reqs),
        ("service+batched-feed", True,
         {"fmt": "binary", "sync_window": SYNC_WINDOW}, feed_reqs),
    ]
    out: dict = {
        "events": len(trace.events),
        "policy": "greedy-threshold",
        "feed_batch": FEED_BATCH,
        "sync_window": SYNC_WINDOW,
        "reps": reps,
        "rows": [],
    }
    # Interleave the baseline and every config within each rep (rather
    # than measuring them minutes apart) so machine-load drift hits all
    # rows of a rep equally and best-of-N compares like with like.
    base_rate = 0.0
    rates = {label: 0.0 for label, *_ in configs}
    results = {}
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(reps):
            base_rate = max(
                base_rate,
                replay(trace,
                       make_policy("greedy-threshold")).metrics.events_per_sec,
            )
            for i, (label, journaled, kwargs, requests) in enumerate(configs):
                journal = (os.path.join(tmp, f"bench-{i}-{rep}.journal")
                           if journaled else None)
                svc = AdmissionService(trace, "greedy-threshold",
                                       journal_path=journal, **kwargs)
                # Time the request loop itself: sustained throughput,
                # not per-run setup/teardown.
                t0 = time.perf_counter()
                for req in requests:
                    resp = svc.handle(req)
                    assert resp["ok"], resp
                dt = time.perf_counter() - t0
                results[label] = svc.close()
                rates[label] = max(rates[label], len(trace.events) / dt)
    out["in_process_events_per_sec"] = base_rate
    for label, *_ in configs:
        rate = rates[label]
        out["rows"].append({
            "mode": label,
            "events_per_sec": rate,
            "overhead": base_rate / rate if rate > 0 else None,
            "accepted": results[label].metrics.accepted,
            "realized_profit": results[label].metrics.realized_profit,
        })
    out["journal_overhead_ratio"] = out["rows"][-1]["overhead"]

    # Warm-restart cost: full replay vs checkpoint + tail vs compacted.
    def build(path: str, checkpoint_every: int = 0) -> None:
        svc = AdmissionService(trace, "greedy-threshold", journal_path=path,
                               fmt="binary", sync_window=SYNC_WINDOW,
                               checkpoint_every=checkpoint_every)
        # Feed in wire-sized batches so checkpoints land on cadence
        # (a checkpoint fires after the batch that crosses it).
        for i in range(0, len(trace.events), FEED_BATCH):
            svc.feed_events(trace.events[i:i + FEED_BATCH])
        svc.journal.close()  # no session close: the killed-writer shape

    resume_rows = []
    with tempfile.TemporaryDirectory() as tmp:
        # A single checkpoint at the 3/4 mark leaves a quarter-length
        # tail — between full replay (whole history) and compacted
        # (empty tail), showing resume cost tracks the tail.
        three_quarters = max((3 * len(trace.events)) // 4, 1)
        shapes = [("full-replay", 0, False),
                  ("checkpoint+tail", three_quarters, False),
                  ("compacted", 0, True)]
        for label, every, compacted in shapes:
            path = os.path.join(tmp, f"{label}.journal")
            build(path, checkpoint_every=every)
            if compacted:
                AdmissionService.compact(path)
            _h, ckpt, tail, _g, _f = scan_journal(path)
            t0 = time.perf_counter()
            svc = AdmissionService.resume(path)
            dt = time.perf_counter() - t0
            assert svc.position == len(trace.events)
            svc.journal.close()
            resume_rows.append({
                "mode": label,
                "tail_events": len(tail),
                "checkpointed": ckpt is not None,
                "resume_s": dt,
            })
    out["resume"] = {"events": len(trace.events), "rows": resume_rows}
    return out


def run_obs_overhead_bench(smoke: bool = False) -> dict:
    """Flight-recorder overhead on the in-process hot path.

    The same greedy-threshold replay, observability off vs on
    (recorder enabled, every decision / admit / evict span landing in
    the ring), interleaved within each rep and best-of-N so machine
    drift hits both rows equally.  ``obs_overhead_ratio`` is
    (obs-off rate) / (obs-on rate); the CI smoke gate fails above
    1.25x — instrumentation this cheap is the license to leave it
    compiled into the hot path.  The converged ratio on a quiet
    machine is ~1.03x (chunk-aggregated batch spans); the gate sits
    well above that because the fast path's ~15ms smoke replay is at
    the scheduler-jitter floor of shared runners, where paired
    measurements swing ±10-15% — a real instrumentation regression
    (per-event span recording in the kernel loop, unconditional args
    construction) costs 1.5x and up and still trips it.
    """
    from repro.obs import tracing
    from repro.online import generate_trace, make_policy, replay

    events = 2_000 if smoke else 20_000
    # The columnar fast path cut the smoke rep to ~15ms, which is down
    # in scheduler-jitter territory on small CI machines; best-of-3 was
    # no longer enough to converge and the 1.05x gate got flaky.  More
    # interleaved reps — each side sampled back to back — keeps the
    # best-of estimate honest without lengthening the full run much.
    reps = 15 if smoke else 5
    trace = generate_trace(
        "line", events=events, process="poisson", seed=0,
        departure_prob=0.35, workload={"n_slots": max(512, events // 8)},
    )
    off_rate = on_rate = 0.0
    spans = 0
    try:
        for _ in range(reps):
            tracing.disable()
            off_rate = max(
                off_rate,
                replay(trace,
                       make_policy("greedy-threshold")).metrics.events_per_sec,
            )
            tracing.enable()
            tracing.RECORDER.clear()
            on_rate = max(
                on_rate,
                replay(trace,
                       make_policy("greedy-threshold")).metrics.events_per_sec,
            )
            spans = tracing.RECORDER.total
    finally:
        tracing.disable()
        tracing.RECORDER.clear()
    return {
        "events": len(trace.events),
        "policy": "greedy-threshold",
        "reps": reps,
        "spans_recorded": spans,
        "obs_off_events_per_sec": off_rate,
        "obs_on_events_per_sec": on_rate,
        "obs_overhead_ratio": off_rate / on_rate if on_rate > 0 else None,
    }


#: Sharding benchmark trace: demands confined to the balancer-cut parts
#: with a directly targeted boundary (cut-crossing) fraction — the
#: shard-aware workload knob — so the scaling rows control the variable
#: that actually prices the serialized boundary phase.
SHARDING_TRACE = dict(kind="tree", process="poisson", seed=0,
                      departure_prob=0.3,
                      workload={"n": 768, "boundary_fraction": 0.05,
                                "parts": 4})


def run_sharding_bench(smoke: bool = False) -> dict:
    """Throughput-vs-shards on the Poisson tree trace (greedy-threshold).

    ``events_per_sec`` per row is the critical-path (deployment) rate;
    ``wall_events_per_sec`` is what this single host measured end to
    end.  ``speedup`` compares the critical path against the unsharded
    single-ledger driver on the identical trace.

    Each shard count is run through both backends — the classic
    two-phase :class:`~repro.sharding.ShardedDriver` and the
    shared-geometry :class:`~repro.sharding.StreamedShardedDriver`
    (two-phase boundary mode, byte-identical results) — and
    ``streamed_wall_speedup`` records the streamed / two-phase
    wall-rate ratio, the headline win of sharing one conflict-index
    build across the coordinator and every shard view.  Best-of-2 per
    cell damps scheduler noise.
    """
    from repro.online import generate_trace, make_policy, replay
    from repro.sharding import ShardedDriver, StreamedShardedDriver

    events = 4_000 if smoke else 20_000
    spec = dict(SHARDING_TRACE)
    kind = spec.pop("kind")
    trace = generate_trace(kind, events=events, **spec)
    base = replay(trace, make_policy("greedy-threshold"))
    out: dict = {
        "trace": {"kind": kind, "events": len(trace.events), **{
            k: v for k, v in spec.items() if k != "workload"
        }, "workload": spec["workload"]},
        "target_boundary_fraction":
            spec["workload"].get("boundary_fraction"),
        "policy": "greedy-threshold",
        "unsharded_events_per_sec": base.metrics.events_per_sec,
        "note": ("events_per_sec is the critical-path rate: total events"
                 " / (slowest shard replay + serialized absorb + boundary phase),"
                 " the throughput an N-worker deployment sustains;"
                 " wall_events_per_sec is this host's end-to-end rate"),
        "rows": [],
    }
    reps = 2
    for shards in (1, 2, 4):
        res, streamed = None, None
        best_wall = best_streamed_wall = 0.0
        for _ in range(reps):
            r = ShardedDriver(shards, "subtree").run(
                trace, "greedy-threshold", {})
            if r.merged.events_per_sec > best_wall:
                best_wall, res = r.merged.events_per_sec, r
            s = StreamedShardedDriver(shards, "subtree").run(
                trace, "greedy-threshold", {})
            if s.merged.events_per_sec > best_streamed_wall:
                best_streamed_wall, streamed = s.merged.events_per_sec, s
        cp = res.critical_path_events_per_sec
        out["rows"].append({
            "shards": shards,
            "events_per_sec": cp,
            "wall_events_per_sec": res.merged.events_per_sec,
            "speedup": cp / base.metrics.events_per_sec,
            "streamed_wall_events_per_sec": streamed.merged.events_per_sec,
            "streamed_events_per_sec":
                streamed.critical_path_events_per_sec,
            "streamed_wall_speedup": (streamed.merged.events_per_sec
                                      / res.merged.events_per_sec),
            "boundary_demands": res.plan["boundary_demands"],
            "boundary_fraction": res.plan["boundary_fraction"],
            "local_demands": res.plan["local_demands"],
            "accepted": res.merged.accepted,
            "realized_profit": res.merged.realized_profit,
        })
    return out


#: Concurrent-clients benchmark grid: front-door fan-in × backend shards.
CLIENT_COUNTS = (1, 8, 64)
CLIENT_SHARDS = (1, 4)


def run_concurrent_clients_bench(smoke: bool = False) -> dict:
    """Async front-door throughput: N concurrent clients, one service.

    Each cell starts an :class:`~repro.service.async_server.
    AsyncLineServer` over a journaled service (binary codec, group
    commit) and drives it with N concurrent TCP clients, each feeding
    its demand-partitioned slice of the trace in batched ``feed``
    requests.  ``wall_events_per_sec`` is total events over the
    first-request-to-last-response wall time — the number that shows
    one event loop sustaining many pipelined clients without falling
    over (the per-event work is the same shared session either way).
    """
    import os
    import socket
    import tempfile
    import threading
    import time

    from repro.io import event_to_dict
    from repro.online import generate_trace
    from repro.service import AdmissionService, AsyncLineServer

    events = 2_000 if smoke else 8_000
    spec = dict(SHARDING_TRACE)
    kind = spec.pop("kind")
    trace = generate_trace(kind, events=events, **spec)
    feed_batch = 64
    out: dict = {
        "events": len(trace.events),
        "policy": "greedy-threshold",
        "feed_batch": feed_batch,
        "journal": {"fmt": "binary", "sync_window": SYNC_WINDOW},
        "rows": [],
    }

    def partition(n: int) -> list[list]:
        streams: list[list] = [[] for _ in range(n)]
        for ev in trace.events:
            d = getattr(ev, "demand_id", None)
            streams[0 if d is None else d % n].append(ev)
        return [[{"op": "feed",
                  "events": [event_to_dict(e) for e in s[i:i + feed_batch]]}
                 for i in range(0, len(s), feed_batch)]
                for s in streams]

    for shards in CLIENT_SHARDS:
        for clients in CLIENT_COUNTS:
            with tempfile.TemporaryDirectory() as tmp:
                svc = AdmissionService(
                    trace, "greedy-threshold",
                    journal_path=os.path.join(tmp, "bench.journal"),
                    shards=shards, fmt="binary", sync_window=SYNC_WINDOW)
                box: dict = {}
                ready = threading.Event()
                server = AsyncLineServer(
                    svc, max_clients=clients + 8,
                    announce=lambda a: (box.update(addr=a), ready.set()))
                st = threading.Thread(target=server.serve_forever,
                                      daemon=True)
                st.start()
                ready.wait(10)
                requests = partition(clients)

                def run_client(reqs):
                    import json as _json
                    sock = socket.create_connection(box["addr"], timeout=60)
                    f = sock.makefile("rw", encoding="utf-8")
                    for req in reqs:
                        f.write(_json.dumps(req) + "\n")
                        f.flush()
                        resp = _json.loads(f.readline())
                        assert resp["ok"], resp
                    sock.close()

                threads = [threading.Thread(target=run_client, args=(r,))
                           for r in requests]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                dt = time.perf_counter() - t0
                server.request_shutdown()
                st.join(10)
                out["rows"].append({
                    "clients": clients,
                    "shards": shards,
                    "wall_events_per_sec": len(trace.events) / dt,
                    "requests": sum(len(r) for r in requests),
                })
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="one small trace, seconds instead of minutes")
    ap.add_argument("-o", "--output", default="BENCH_online.json")
    ap.add_argument("--check-overhead", action="store_true",
                    help="exit nonzero if the journaled fast path "
                         "(binary + group commit + batched feed) runs "
                         "slower than 2.5x the in-process replay rate, "
                         "the enabled flight recorder costs the "
                         "in-process hot path more than 25%, or the "
                         "columnar batch fast path fails to beat the "
                         "scalar event loop (speedup below 1.0x)")
    args = ap.parse_args(argv)
    report = run_online_bench(smoke=args.smoke, out_path=args.output)
    for events, case in report["cases"].items():
        print(f"{events} events ({case['arrivals']} arrivals, "
              f"{case['instances']} instances):")
        for name, rec in case["policies"].items():
            line = (f"  {name:<19} {rec['events_per_sec']:>9.0f} ev/s  "
                    f"acc {100 * rec['acceptance_ratio']:.1f}%  "
                    f"profit {rec['realized_profit']:.1f}  ")
            if rec.get("evictions"):
                line += (f"evict {rec['evictions']}  "
                         f"adj {rec['penalty_adjusted_profit']:.1f}  ")
            line += f"p99 {rec['latency_p99_us']:.0f}µs"
            if "fastpath_speedup" in rec:
                line += (f"  scalar {rec['scalar_events_per_sec']:>9.0f} "
                         f"ev/s  fastpath x{rec['fastpath_speedup']:.2f}")
            print(line)
    fp_ratio = report["fastpath_speedup_ratio"]
    print(f"fastpath_speedup_ratio x{fp_ratio:.2f} "
          f"(aggregate scalar/fast feed time over the kernel-policy "
          f"corpus; target >= 3.0, gate at 1.0)")
    service = report["service"]
    print(f"service ({service['events']} events, "
          f"{service['in_process_events_per_sec']:.0f} ev/s in-process):")
    for row in service["rows"]:
        print(f"  {row['mode']:<24} {row['events_per_sec']:>9.0f} ev/s  "
              f"overhead x{row['overhead']:.2f}")
    ratio = service["journal_overhead_ratio"]
    print(f"  journal_overhead_ratio x{ratio:.2f} "
          f"(fast path vs in-process; target <= 2.0, gate at 2.5)")
    print("resume (warm restart of "
          f"{service['resume']['events']} journaled events):")
    for row in service["resume"]["rows"]:
        print(f"  {row['mode']:<16} tail {row['tail_events']:>6} events  "
              f"{1e3 * row['resume_s']:>8.1f} ms")
    obs = report["obs"]
    obs_ratio = obs["obs_overhead_ratio"]
    print(f"obs ({obs['events']} events, {obs['spans_recorded']} spans): "
          f"off {obs['obs_off_events_per_sec']:.0f} ev/s  "
          f"on {obs['obs_on_events_per_sec']:.0f} ev/s  "
          f"obs_overhead_ratio x{obs_ratio:.3f} (gate at 1.25)")
    sharding = report["sharding"]
    print(f"sharding ({sharding['trace']['events']} events, poisson tree, "
          f"{sharding['unsharded_events_per_sec']:.0f} ev/s unsharded):")
    for row in sharding["rows"]:
        print(f"  shards={row['shards']}  {row['events_per_sec']:>9.0f} ev/s"
              f" (critical path)  x{row['speedup']:.2f}  boundary "
              f"{100 * row['boundary_fraction']:.1f}%  "
              f"wall {row['wall_events_per_sec']:.0f} ev/s  "
              f"streamed wall {row['streamed_wall_events_per_sec']:.0f} "
              f"ev/s (x{row['streamed_wall_speedup']:.2f})")
    serving = report["serving"]
    print(f"serving ({serving['events']} events via the async front "
          f"door, batched feed, binary journal):")
    for row in serving["rows"]:
        print(f"  clients={row['clients']:<3} shards={row['shards']}  "
              f"wall {row['wall_events_per_sec']:>9.0f} ev/s")
    print(f"written to {args.output}")
    if args.check_overhead and ratio > 2.5:
        print(f"FAIL: journal_overhead_ratio x{ratio:.2f} exceeds the "
              f"2.5x gate", file=sys.stderr)
        return 1
    if args.check_overhead and obs_ratio > 1.25:
        print(f"FAIL: obs_overhead_ratio x{obs_ratio:.3f} exceeds the "
              f"1.25x gate", file=sys.stderr)
        return 1
    if args.check_overhead and fp_ratio < 1.0:
        print(f"FAIL: fastpath_speedup_ratio x{fp_ratio:.2f} below the "
              f"1.0x gate (batch kernels slower than the scalar loop)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
