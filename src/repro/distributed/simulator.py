"""Synchronous message-passing simulator.

This is the substitution for the paper's physical processor network: the
standard synchronous model (Section 1) where, per round, every processor
reads the messages sent to it in the previous round, computes locally
(polynomial time), and sends messages to its neighbours in the
communication graph (processors sharing a resource).

The simulator is deliberately strict:

* messages may only be sent to communication-graph neighbours —
  violating the model raises immediately;
* all message delivery is batched per round (no same-round reads);
* rounds and message counts are tallied, because the round complexity is
  the quantity the paper's theorems bound.

:class:`ProcessorBase` is the agent interface; protocols subclass it and
the harness drives :meth:`SyncSimulator.run_phase` until quiescence (no
messages in flight and no processor requesting another round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .messages import Kind, Message

__all__ = ["ProcessorBase", "RoundContext", "SimStats", "SyncSimulator"]


@dataclass
class SimStats:
    """Round/message ledger of a simulation."""

    rounds: int = 0
    messages: int = 0
    per_phase: dict[str, int] = field(default_factory=dict)

    def charge(self, phase: str, rounds: int) -> None:
        """Attribute ``rounds`` rounds to a named phase."""
        self.per_phase[phase] = self.per_phase.get(phase, 0) + rounds


class RoundContext:
    """Handed to processors each round; collects their outgoing messages."""

    def __init__(self, sim: "SyncSimulator", pid: int):
        self._sim = sim
        self._pid = pid
        self.outbox: list[Message] = []

    def send(self, recipient: int, kind: Kind, payload: object = None) -> None:
        """Queue a message for delivery next round (neighbours only)."""
        if recipient not in self._sim.graph[self._pid]:
            raise RuntimeError(
                f"processor {self._pid} may not message {recipient}: they "
                "share no resource"
            )
        self.outbox.append(Message(self._pid, recipient, kind, payload))

    def broadcast(self, kind: Kind, payload: object = None) -> None:
        """Queue a message to every neighbour."""
        for nb in self._sim.graph[self._pid]:
            self.outbox.append(Message(self._pid, nb, kind, payload))


class ProcessorBase:
    """A processor (agent).  Subclass and implement :meth:`on_round`.

    ``wants_round`` signals the processor still has protocol work in the
    current phase; a phase ends when nobody wants a round and no messages
    are in flight.
    """

    def __init__(self, pid: int):
        self.pid = pid
        self.wants_round = True

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Handle this round's inbox; queue sends via ``ctx``."""
        raise NotImplementedError


class SyncSimulator:
    """Drive a set of processors over a fixed communication graph.

    Parameters
    ----------
    graph:
        Adjacency mapping pid → set of neighbour pids (symmetric).
    processors:
        Mapping pid → :class:`ProcessorBase`; keys must match ``graph``.
    """

    def __init__(self, graph: Mapping[int, set], processors: Mapping[int, ProcessorBase]):
        if set(graph) != set(processors):
            raise ValueError("graph and processors must have the same pids")
        for pid, nbrs in graph.items():
            for nb in nbrs:
                if pid not in graph[nb]:
                    raise ValueError(f"asymmetric edge {pid}->{nb}")
        self.graph = {pid: set(nbrs) for pid, nbrs in graph.items()}
        self.processors = dict(processors)
        self.stats = SimStats()
        self._in_flight: dict[int, list[Message]] = {pid: [] for pid in graph}

    def step_round(self) -> bool:
        """Run one synchronous round.  Returns whether anything happened."""
        inboxes = self._in_flight
        self._in_flight = {pid: [] for pid in self.graph}
        any_active = False
        for pid, proc in self.processors.items():
            inbox = inboxes[pid]
            if not inbox and not proc.wants_round:
                continue
            any_active = True
            ctx = RoundContext(self, pid)
            proc.on_round(ctx, inbox)
            for msg in ctx.outbox:
                self._in_flight[msg.recipient].append(msg)
                self.stats.messages += 1
        if any_active:
            self.stats.rounds += 1
        return any_active

    def run_phase(self, name: str, max_rounds: int = 1_000_000) -> int:
        """Run rounds until quiescence; returns the round count of the phase.

        Quiescence: no processor wants a round and no messages in flight.
        """
        start = self.stats.rounds
        for _ in range(max_rounds):
            if not self.step_round():
                break
        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"phase {name!r} exceeded {max_rounds} rounds")
        used = self.stats.rounds - start
        self.stats.charge(name, used)
        return used

    def messages_in_flight(self) -> int:
        """Number of undelivered messages (diagnostic)."""
        return sum(len(v) for v in self._in_flight.values())
