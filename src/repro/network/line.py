"""Line-network substrate (the timeline view of Section 1 and Section 7).

A line-network is a path graph.  The paper reformulates it by viewing each
edge ``(i, i+1)`` as a *timeslot*: a path on ``n + 1`` vertices becomes a
timeline of ``n`` timeslots, a demand becomes an interval of timeslots, and
a graph-network becomes a *resource* offering one unit of bandwidth across
the whole timeline.

:class:`LineNetwork` implements the interval view directly (timeslots
``0 .. n_slots - 1``; an interval is an inclusive pair ``(start, end)``),
which is what the Section 7 algorithms operate on.  :func:`line_as_tree`
produces the equivalent :class:`~repro.network.tree.TreeNetwork` so the
tree-network algorithms can be cross-checked against the line algorithms on
identical workloads (Section 7 notes the timeline "can be viewed as a
tree-network with n + 1 vertices").
"""

from __future__ import annotations

from .tree import TreeNetwork

__all__ = ["Interval", "LineNetwork", "line_as_tree", "interval_to_endpoints"]

#: An inclusive range of timeslots ``(start, end)`` with ``start <= end``.
Interval = tuple[int, int]


class LineNetwork:
    """A resource offering unit bandwidth over ``n_slots`` timeslots.

    Parameters
    ----------
    n_slots:
        Number of timeslots in the timeline (the path graph has
        ``n_slots + 1`` vertices).
    network_id:
        Identifier of this resource within the problem instance.
    """

    __slots__ = ("n_slots", "network_id")

    def __init__(self, n_slots: int, network_id: int = 0):
        if n_slots <= 0:
            raise ValueError("a line-network needs at least one timeslot")
        self.n_slots = int(n_slots)
        self.network_id = int(network_id)

    def validate_interval(self, interval: Interval) -> None:
        """Raise :class:`ValueError` unless ``interval`` fits the timeline."""
        s, e = interval
        if not (0 <= s <= e < self.n_slots):
            raise ValueError(
                f"interval {interval} outside timeline 0..{self.n_slots - 1}"
            )

    @staticmethod
    def overlaps(a: Interval, b: Interval) -> bool:
        """Whether two inclusive timeslot intervals share a timeslot."""
        return a[0] <= b[1] and b[0] <= a[1]

    @staticmethod
    def length(interval: Interval) -> int:
        """Number of timeslots covered: ``e - s + 1`` (Section 7's len)."""
        return interval[1] - interval[0] + 1

    @staticmethod
    def midpoint(interval: Interval) -> int:
        """``mid(d) = ⌊(s + e)/2⌋`` — the middle timeslot (Section 7)."""
        return (interval[0] + interval[1]) // 2

    def slots(self, interval: Interval) -> range:
        """Iterate the timeslots covered by ``interval``."""
        self.validate_interval(interval)
        return range(interval[0], interval[1] + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LineNetwork(id={self.network_id}, n_slots={self.n_slots})"


def line_as_tree(line: LineNetwork) -> TreeNetwork:
    """The path-graph :class:`TreeNetwork` equivalent to ``line``.

    Vertex ``i`` and vertex ``i + 1`` bracket timeslot ``i``; an interval
    ``(s, e)`` corresponds to the demand pair ``(s, e + 1)``.
    """
    n = line.n_slots + 1
    return TreeNetwork(n, [(i, i + 1) for i in range(line.n_slots)],
                       network_id=line.network_id)


def interval_to_endpoints(interval: Interval) -> tuple[int, int]:
    """Map a timeslot interval to its path-graph demand endpoints."""
    s, e = interval
    return (s, e + 1)
