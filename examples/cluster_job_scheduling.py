#!/usr/bin/env python
"""Cluster job scheduling with deadlines — the Section 7 line scenario.

A compute cluster exposes r machines (resources) over a discrete
timeline.  Each job has a release time, a deadline, a processing time, a
value, and a resource share (height): a 0.25-height job takes a quarter
of a machine.  Scheduling a job claims its share on one machine for a
contiguous interval inside its window — throughput maximization on
line-networks with windows and arbitrary heights.

We schedule 40 jobs on 3 machines over 80 timeslots with the paper's
(23+ε) algorithm, compare against Panconesi–Sozio's (55+ε) baseline, a
greedy heuristic and the exact optimum, and draw the resulting Gantt
chart for machine 0.

Run:  python examples/cluster_job_scheduling.py
"""

import numpy as np

from repro import (
    LineNetwork,
    LineProblem,
    WindowDemand,
    solve_greedy,
    solve_line_arbitrary,
    solve_optimal,
    solve_ps_line_arbitrary,
    verify_line_solution,
)

N_SLOTS = 80
N_MACHINES = 3
N_JOBS = 40
SEED = 7


def build_cluster() -> LineProblem:
    rng = np.random.default_rng(SEED)
    machines = [LineNetwork(N_SLOTS, network_id=q) for q in range(N_MACHINES)]
    jobs = []
    for i in range(N_JOBS):
        rho = int(rng.integers(2, 13))
        slack = int(rng.integers(0, rho + 1))
        release = int(rng.integers(0, N_SLOTS - rho - slack + 1))
        share = float(rng.choice([0.25, 0.5, 1.0], p=[0.4, 0.35, 0.25]))
        value = rho * share * float(rng.uniform(0.8, 1.5))
        jobs.append(WindowDemand(
            i, release=release, deadline=release + rho + slack - 1,
            proc_time=rho, profit=value, height=share,
        ))
    return LineProblem(n_slots=N_SLOTS, resources=machines, demands=jobs)


def gantt(problem: LineProblem, sol, machine: int) -> str:
    lanes: list[list[str]] = []
    for inst in sorted(sol.selected, key=lambda d: d.start):
        if inst.network_id != machine:
            continue
        tag = chr(ord("a") + inst.demand_id % 26)
        placed = False
        for lane in lanes:
            if all(lane[t] == "." for t in range(inst.start, inst.end + 1)):
                for t in range(inst.start, inst.end + 1):
                    lane[t] = tag
                placed = True
                break
        if not placed:
            lane = ["."] * problem.n_slots
            for t in range(inst.start, inst.end + 1):
                lane[t] = tag
            lanes.append(lane)
    return "\n".join("  " + "".join(lane) for lane in lanes) or "  (idle)"


def main() -> None:
    problem = build_cluster()
    ours = solve_line_arbitrary(problem, epsilon=0.1, seed=SEED)
    verify_line_solution(problem, ours)
    ps = solve_ps_line_arbitrary(problem, epsilon=0.1, seed=SEED)
    greedy = solve_greedy(problem, order="density")
    opt = solve_optimal(problem)

    print(f"{N_JOBS} jobs, {N_MACHINES} machines, {N_SLOTS} timeslots\n")
    print(f"{'method':<26}{'value':>9}{'jobs':>7}")
    print("-" * 42)
    for name, s in [
        ("this paper (23+ε)", ours),
        ("Panconesi–Sozio (55+ε)", ps),
        ("greedy (density)", greedy),
        ("exact optimum", opt),
    ]:
        print(f"{name:<26}{s.profit:>9.1f}{s.size:>7}")
    print(f"\nmeasured ratio OPT/ours = {opt.profit / ours.profit:.3f}")
    print(f"distributed rounds      = {ours.stats['total_rounds']}")

    print("\nmachine 0 schedule (rows are capacity lanes; letters = jobs):")
    print(gantt(problem, ours, machine=0))


if __name__ == "__main__":
    main()
