"""Balancing tree decomposition (Section 4.2, second construction).

``BuildBalTD``: find a *balancer* (centroid) ``z`` of the component — a
vertex whose removal leaves pieces of size at most ``⌊|C|/2⌋`` — make it
the root, and recurse on the pieces.  The depth is at most
``⌈log n⌉ + 1`` because sizes halve, but a component's outside
neighbourhood can accumulate one vertex per level, so the pivot size can
reach the depth (``θ = O(log n)``).  The ideal decomposition (Section 4.3)
fixes exactly this.
"""

from __future__ import annotations

from ..network.tree import TreeNetwork
from .base import TreeDecomposition

__all__ = ["balancing_decomposition"]


def balancing_decomposition(tree: TreeNetwork) -> TreeDecomposition:
    """Centroid recursion: depth ``O(log n)``, pivot size up to the depth."""
    parent = [-1] * tree.n
    # Iterative worklist of (component, parent-in-H) pairs.
    work: list[tuple[set[int], int]] = [(set(range(tree.n)), -1)]
    while work:
        comp, par = work.pop()
        z = tree.find_balancer(comp)
        parent[z] = par
        for piece in tree.split_component(z, comp):
            work.append((piece, z))
    return TreeDecomposition(tree, parent, name="balancing")
