"""The sequential Appendix-A algorithm for tree-networks.

A local-ratio / primal-dual 3-approximation (implicit in Lewin-Eytan et
al. [13]), expressed in the two-phase framework with ``∆ = 2`` and
``λ = 1``:

* each tree-network gets the **root-fixing** decomposition (pivot 1);
* demand instances are ordered by *descending* depth of their capture
  node ``µ(d)`` (bottom-most captures first), network by network;
* each step raises the single earliest unsatisfied instance to tightness
  with critical edges ``π(d)`` = the wings of ``µ(d)`` on ``path(d)``
  (≤ 2 edges — Observation A.1 gives the interference property);
* the second phase pops the stack as usual.

Lemma 3.1: ratio ``(∆+1)/λ = 3``.  With a **single tree-network** the α
variables are unnecessary (one instance per demand), improving the ratio
to ``∆/λ = 2`` — essentially Lewin-Eytan et al.'s algorithm; enabled
automatically (or via ``raise_alpha``).

Round complexity is Θ(number of raised instances) — up to ``n`` — which
is exactly why Section 5 replaces the singleton ordering with MIS-parallel
stages; benchmark E11 measures that contrast.
"""

from __future__ import annotations

from ..core.instance import TreeProblem
from ..core.solution import Solution
from ..decomposition.rooted import root_fixing_decomposition
from .compile import compile_tree
from .framework import EngineConfig, EngineInput, TwoPhaseEngine
from .registry import register

__all__ = ["solve_sequential_tree"]


@register(
    "sequential",
    family="tree",
    description="sequential Appendix-A local-ratio algorithm (3-approx)",
    accepts=("raise_alpha", "instance_filter"),
)
def solve_sequential_tree(
    problem: TreeProblem,
    *,
    raise_alpha: bool | None = None,
    instance_filter=None,
) -> Solution:
    """Run the Appendix-A sequential algorithm.

    Parameters
    ----------
    problem:
        The tree-network instance (unit-height semantics: routes are
        packed edge-disjointly regardless of declared heights).
    raise_alpha:
        Force the α raises on/off.  Default: off exactly when every
        demand has a single instance (the 2-approximation case), on
        otherwise (the 3-approximation case).
    instance_filter:
        Optional sub-population restriction.
    """
    base = compile_tree(
        problem,
        decomposition=root_fixing_decomposition,
        instance_filter=instance_filter,
    )
    # Appendix-A critical sets: only the wings of µ(d) — drop the bending
    # point wings that Lemma 4.2 adds for the pivots.  For the
    # root-fixing decomposition the pivot of µ(d) is its H-parent, whose
    # bending point on path(d) is µ(d) itself, so the Lemma 4.2 sets
    # already coincide with the wings of µ(d); we recompute them directly
    # anyway to stay faithful to Observation A.1.
    tds = {q: root_fixing_decomposition(problem.networks[q])
           for q in range(problem.num_networks)}
    critical: dict[int, tuple] = {}
    capture_depth: dict[int, int] = {}
    for d in base.instances:
        td = tds[d.network_id]
        z = td.capture(d.u, d.v)
        capture_depth[d.instance_id] = td.depth[z]
        wings = td.tree.wings(z, (d.u, d.v))
        critical[d.instance_id] = tuple((d.network_id, ek) for ek in wings)

    # σ(T_i) ordering: networks in index order; within a network,
    # descending capture depth.  Singleton groups = one raise per step.
    order = sorted(
        base.instances,
        key=lambda d: (d.network_id, -capture_depth[d.instance_id], d.instance_id),
    )
    groups = [[d.instance_id] for d in order]
    inp = EngineInput(
        instances=base.instances,
        edges_of=base.edges_of,
        critical=critical,
        groups=groups,
        delta=2,
        networks=base.networks,
    )
    if raise_alpha is None:
        multi = len(base.instances) > len({d.demand_id for d in base.instances})
        raise_alpha = multi
    cfg = EngineConfig(
        rule="unit",
        single_stage_target=1.0,
        mis="greedy",
        raise_alpha=raise_alpha,
    )
    selected, stats = TwoPhaseEngine(inp, cfg).run()
    ratio = 3.0 if raise_alpha else 2.0
    return Solution(
        selected=selected,
        stats={
            "algorithm": f"sequential-appendixA({ratio:.0f}-approx)",
            "delta": stats.delta,
            "steps": stats.steps,
            "raises": stats.raises,
            "total_rounds": stats.total_rounds,
            "realized_lambda": stats.realized_lambda,
            "dual_objective": stats.dual_objective,
            "opt_upper_bound": stats.opt_upper_bound,
            "approx_guarantee": ratio,
            "raise_alpha": raise_alpha,
        },
    )
