#!/usr/bin/env python
"""Run the actual message-passing protocol, agent by agent.

The library normally executes the algorithm through the round-accounting
engine.  This demo runs the *processor-level* protocol of Section 5's
"Distributed Implementation" instead: every processor is an object that
only talks to processors it shares a resource with, MIS is a real
multi-round subprotocol, and β-duals propagate by neighbour broadcast.
The output is bit-identical to the engine (both use the priority MIS) —
which the demo verifies — while reporting genuine message counts.

Run:  python examples/distributed_protocol_demo.py
"""

from repro import compile_tree, random_tree_problem, solve_tree_unit, verify_tree_solution
from repro.distributed.runtime import TreeUnitRuntime


def main() -> None:
    problem = random_tree_problem(n=24, m=16, r=3, seed=11, access_prob=0.7)
    print(f"{problem.num_demands} processors, {problem.num_networks} "
          f"tree-networks, {len(problem.instances())} demand instances\n")

    inp = compile_tree(problem)
    runtime = TreeUnitRuntime(problem, epsilon=0.15, delta=inp.delta)
    agent_sol = runtime.run()
    verify_tree_solution(problem, agent_sol)

    engine_sol = solve_tree_unit(problem, epsilon=0.15, mis="greedy")

    print("agent-level protocol:")
    print(f"  profit            {agent_sol.profit:.2f}")
    print(f"  accepted demands  {agent_sol.size}")
    print(f"  synchronous rounds {agent_sol.stats['rounds']}")
    print(f"  messages sent     {agent_sol.stats['messages']}")
    print(f"  primal-dual steps {agent_sol.stats['steps']}")

    same = sorted((d.demand_id, d.network_id) for d in agent_sol.selected) == \
           sorted((d.demand_id, d.network_id) for d in engine_sol.selected)
    print(f"\nengine (logical simulation) profit: {engine_sol.profit:.2f}")
    print(f"agent protocol == engine output: {same}")
    assert same, "protocol diverged from the engine"

    print("\nper-phase round ledger (first 8 phases):")
    for name, rounds in list(runtime.sim.stats.per_phase.items())[:8]:
        print(f"  {name:<18} {rounds} rounds")


if __name__ == "__main__":
    main()
