"""Demands and demand instances (Section 2 and Section 6 of the paper).

A *demand* is owned by exactly one processor and names a pair of vertices,
a profit, and (in the arbitrary-height case, Section 6) a bandwidth
requirement ``height ∈ (0, 1]``.  For every tree-network the owning
processor can access, the demand spawns a *demand instance* — a copy tied
to that network whose route is the unique tree path between the endpoints.

On line-networks with windows (Section 7) a demand instead carries a
window ``[release, deadline]`` and a processing time; it spawns one
instance per accessible resource *and* per feasible placement of the
processing interval inside the window.

Instances are the unit the primal-dual machinery works with: the LP has
one variable per instance, the conflict graph has one vertex per instance,
and the framework raises/selects instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Demand",
    "WindowDemand",
    "TreeDemandInstance",
    "LineDemandInstance",
    "is_narrow",
    "is_wide",
]

#: Heights at most 1/2 are *narrow*, above 1/2 are *wide* (Section 6).
NARROW_THRESHOLD = 0.5


def is_narrow(height: float) -> bool:
    """Whether a height classifies as narrow: ``h <= 1/2`` (Section 6)."""
    return height <= NARROW_THRESHOLD


def is_wide(height: float) -> bool:
    """Whether a height classifies as wide: ``h > 1/2`` (Section 6)."""
    return height > NARROW_THRESHOLD


@dataclass(frozen=True, slots=True)
class Demand:
    """A point-to-point demand on tree-networks.

    Attributes
    ----------
    demand_id:
        Index of the demand; also the id of the owning processor (the
        paper has a 1:1 processor/demand correspondence).
    u, v:
        Endpoints (vertices of the shared vertex set).  ``u != v``.
    profit:
        Strictly positive profit ``p(a)``.
    height:
        Bandwidth requirement ``h(a) ∈ (0, 1]``; 1.0 is the unit case.
    """

    demand_id: int
    u: int
    v: int
    profit: float
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"demand {self.demand_id}: endpoints must differ")
        if self.profit <= 0:
            raise ValueError(f"demand {self.demand_id}: profit must be positive")
        if not (0.0 < self.height <= 1.0):
            raise ValueError(
                f"demand {self.demand_id}: height must lie in (0, 1], "
                f"got {self.height}"
            )

    @property
    def narrow(self) -> bool:
        """Narrow iff ``height <= 1/2`` (Section 6)."""
        return is_narrow(self.height)


@dataclass(frozen=True, slots=True)
class WindowDemand:
    """A demand on line-networks with a window (Section 7).

    The job may execute on any segment of ``proc_time`` consecutive
    timeslots contained in ``[release, deadline]`` (inclusive timeslots).
    """

    demand_id: int
    release: int
    deadline: int
    proc_time: int
    profit: float
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.proc_time <= 0:
            raise ValueError(f"demand {self.demand_id}: proc_time must be positive")
        if self.release > self.deadline:
            raise ValueError(
                f"demand {self.demand_id}: release {self.release} exceeds "
                f"deadline {self.deadline}"
            )
        if self.window_length < self.proc_time:
            raise ValueError(
                f"demand {self.demand_id}: window [{self.release}, "
                f"{self.deadline}] shorter than proc_time {self.proc_time}"
            )
        if self.profit <= 0:
            raise ValueError(f"demand {self.demand_id}: profit must be positive")
        if not (0.0 < self.height <= 1.0):
            raise ValueError(
                f"demand {self.demand_id}: height must lie in (0, 1], "
                f"got {self.height}"
            )

    @property
    def window_length(self) -> int:
        """Number of timeslots in the window."""
        return self.deadline - self.release + 1

    @property
    def narrow(self) -> bool:
        """Narrow iff ``height <= 1/2`` (Section 6)."""
        return is_narrow(self.height)

    def placements(self) -> list[tuple[int, int]]:
        """All feasible execution intervals ``(start, end)`` in the window."""
        return [
            (s, s + self.proc_time - 1)
            for s in range(self.release, self.deadline - self.proc_time + 2)
        ]


@dataclass(frozen=True, slots=True)
class TreeDemandInstance:
    """A demand instance on a specific tree-network.

    ``path_edges`` caches the canonical edge keys of the unique route in
    the instance's tree-network (computed once by the problem container).
    """

    instance_id: int
    demand_id: int
    network_id: int
    u: int
    v: int
    profit: float
    height: float = 1.0
    path_edges: tuple = field(default=(), compare=False)

    @property
    def endpoints(self) -> tuple[int, int]:
        """The demand's vertex pair."""
        return (self.u, self.v)

    @property
    def narrow(self) -> bool:
        """Narrow iff ``height <= 1/2``."""
        return is_narrow(self.height)


@dataclass(frozen=True, slots=True)
class LineDemandInstance:
    """A demand instance on a specific line resource with a fixed interval.

    ``start``/``end`` are inclusive timeslots; the instance is *active* on
    every timeslot in between (the timeslots play the role of edges).
    """

    instance_id: int
    demand_id: int
    network_id: int
    start: int
    end: int
    profit: float
    height: float = 1.0

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(
                f"instance {self.instance_id}: start {self.start} exceeds "
                f"end {self.end}"
            )

    @property
    def interval(self) -> tuple[int, int]:
        """The inclusive timeslot interval."""
        return (self.start, self.end)

    @property
    def length(self) -> int:
        """Number of timeslots covered: ``end - start + 1``."""
        return self.end - self.start + 1

    @property
    def narrow(self) -> bool:
        """Narrow iff ``height <= 1/2``."""
        return is_narrow(self.height)
