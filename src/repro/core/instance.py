"""Problem containers: tree-network and line-network scheduling instances.

A problem instance bundles the vertex set, the networks, the demands, and
the *accessibility* map ``Acc(P)`` (which networks each processor/demand
can use, Section 2).  It expands demands into the flat list of demand
instances the algorithms operate on, caches each instance's route, and
builds the per-edge activity index used for conflict detection and
feasibility checking.

Global edge identifiers are ``(network_id, edge_key)`` for tree problems
and ``(network_id, timeslot)`` for line problems, so dual variables
``beta(e)`` live in a single dictionary even across networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from ..network.line import LineNetwork
from ..network.tree import TreeNetwork
from .demand import (
    Demand,
    LineDemandInstance,
    TreeDemandInstance,
    WindowDemand,
)

__all__ = ["TreeProblem", "LineProblem", "GlobalEdge", "subproblem_of"]

#: ``(network_id, edge_key)`` for trees, ``(network_id, timeslot)`` for lines.
GlobalEdge = tuple[int, Hashable]


def subproblem_of(problem: "TreeProblem | LineProblem",
                  demand_ids: Sequence[int],
                  extra_demands: Sequence = (),
                  extra_access: Sequence = ()) -> "TreeProblem | LineProblem":
    """A standalone problem over a subset of ``problem``'s demands.

    Demand ids are densified to ``0 ..`` in ``demand_ids`` order (then
    any ``extra_demands``, renumbered to continue the sequence, each
    paired with its ``extra_access`` set); networks and access sets are
    shared with the full problem, so every route is bit-identical to its
    counterpart.  Used by the batch-resolve re-solve (extras carry the
    admitted load as blockers) and the shard planner.
    """
    from dataclasses import replace

    demands = [replace(problem.demands[d], demand_id=i)
               for i, d in enumerate(demand_ids)]
    access = [problem.access[d] for d in demand_ids]
    for extra, acc in zip(extra_demands, extra_access):
        demands.append(replace(extra, demand_id=len(demands)))
        access.append(frozenset(acc))
    if isinstance(problem, TreeProblem):
        return TreeProblem(n=problem.n, networks=problem.networks,
                           demands=demands, access=access)
    if isinstance(problem, LineProblem):
        return LineProblem(n_slots=problem.n_slots,
                           resources=problem.resources,
                           demands=demands, access=access)
    raise TypeError(f"cannot take a subproblem of {type(problem).__name__}")


def _validate_access(access: Sequence[set[int]], m: int, r: int) -> list[frozenset[int]]:
    if len(access) != m:
        raise ValueError(f"need one access set per demand: got {len(access)}, want {m}")
    out: list[frozenset[int]] = []
    for i, acc in enumerate(access):
        fz = frozenset(int(t) for t in acc)
        if not fz:
            raise ValueError(f"processor {i} can access no network")
        if any(t < 0 or t >= r for t in fz):
            raise ValueError(f"processor {i} access set {set(acc)} out of range 0..{r - 1}")
        out.append(fz)
    return out


@dataclass
class TreeProblem:
    """Throughput maximization on tree-networks (Sections 2 and 6).

    Parameters
    ----------
    n:
        Number of vertices in the shared vertex set.
    networks:
        The tree-networks, each spanning ``0 .. n-1``.  ``networks[q]``
        must have ``network_id == q``.
    demands:
        One :class:`~repro.core.demand.Demand` per processor.
    access:
        ``access[i]`` is ``Acc(P_i)``: the network ids processor ``i``
        (owner of ``demands[i]``) may schedule on.
    """

    n: int
    networks: list[TreeNetwork]
    demands: list[Demand]
    access: list[frozenset[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.networks:
            raise ValueError("need at least one tree-network")
        for q, net in enumerate(self.networks):
            if net.network_id != q:
                raise ValueError(
                    f"networks[{q}] has network_id {net.network_id}; ids must "
                    "equal list positions"
                )
            if net.n != self.n:
                raise ValueError(
                    f"network {q} has {net.n} vertices, instance declares {self.n}"
                )
        for i, a in enumerate(self.demands):
            if a.demand_id != i:
                raise ValueError(
                    f"demands[{i}] has demand_id {a.demand_id}; ids must equal "
                    "list positions"
                )
            if not (0 <= a.u < self.n and 0 <= a.v < self.n):
                raise ValueError(f"demand {i} endpoints outside 0..{self.n - 1}")
        if not self.access:
            # Default: every processor accesses every network.
            self.access = [frozenset(range(len(self.networks)))] * len(self.demands)
        self.access = _validate_access(self.access, len(self.demands), len(self.networks))
        self._instances: list[TreeDemandInstance] | None = None

    # ------------------------------------------------------------------

    @property
    def num_networks(self) -> int:
        """Number of tree-networks ``r``."""
        return len(self.networks)

    @property
    def num_demands(self) -> int:
        """Number of demands / processors ``m``."""
        return len(self.demands)

    @property
    def unit_height(self) -> bool:
        """Whether every demand has height exactly 1 (Section 2's case)."""
        return all(a.height == 1.0 for a in self.demands)

    def profit_range(self) -> tuple[float, float]:
        """``(pmin, pmax)`` over all demands."""
        profits = [a.profit for a in self.demands]
        return min(profits), max(profits)

    # ------------------------------------------------------------------

    def instances(self) -> list[TreeDemandInstance]:
        """Expand demands into demand instances (one per accessible network).

        Routes (``path_edges``) are computed once and cached on each
        instance.  Instance ids are ``0 .. |D|-1`` in a deterministic
        order (by demand id, then network id).
        """
        if self._instances is None:
            out: list[TreeDemandInstance] = []
            for a in self.demands:
                for q in sorted(self.access[a.demand_id]):
                    net = self.networks[q]
                    path = tuple(net.path_edges(a.u, a.v))
                    out.append(
                        TreeDemandInstance(
                            instance_id=len(out),
                            demand_id=a.demand_id,
                            network_id=q,
                            u=a.u,
                            v=a.v,
                            profit=a.profit,
                            height=a.height,
                            path_edges=path,
                        )
                    )
            self._instances = out
        return self._instances

    def global_edges_of(self, inst: TreeDemandInstance) -> list[GlobalEdge]:
        """The global edge ids the instance is active on (``d ∼ e``)."""
        return [(inst.network_id, ek) for ek in inst.path_edges]

    def edge_activity(self) -> dict[GlobalEdge, list[int]]:
        """Map every global edge to the instance ids active on it."""
        act: dict[GlobalEdge, list[int]] = {}
        for inst in self.instances():
            for ge in self.global_edges_of(inst):
                act.setdefault(ge, []).append(inst.instance_id)
        return act

    def communication_graph(self) -> Any:
        """The processor communication graph (Section 2).

        Two processors may talk iff their access sets intersect.  Returned
        as a :class:`networkx.Graph` over processor ids; used by the
        distributed substrate.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_demands))
        by_net: dict[int, list[int]] = {}
        for i, acc in enumerate(self.access):
            for q in acc:
                by_net.setdefault(q, []).append(i)
        for members in by_net.values():
            for a, b in zip(members, members[1:]):
                g.add_edge(a, b)
            # The shared-resource groups are cliques in the communication
            # graph; a path through the group preserves connectivity and
            # keeps the graph sparse.  Full cliques are what the model
            # allows — add them for small groups where it is cheap.
            if len(members) <= 50:
                for ia, a in enumerate(members):
                    for b in members[ia + 1:]:
                        g.add_edge(a, b)
        return g


@dataclass
class LineProblem:
    """Throughput maximization on line-networks with windows (Section 7).

    Parameters
    ----------
    n_slots:
        Number of timeslots on the timeline.
    resources:
        The line-networks; ``resources[q]`` must have ``network_id == q``
        and span ``n_slots`` timeslots.
    demands:
        One :class:`~repro.core.demand.WindowDemand` per processor.
    access:
        ``access[i]`` = resource ids processor ``i`` may use.
    """

    n_slots: int
    resources: list[LineNetwork]
    demands: list[WindowDemand]
    access: list[frozenset[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.resources:
            raise ValueError("need at least one resource")
        for q, res in enumerate(self.resources):
            if res.network_id != q:
                raise ValueError(
                    f"resources[{q}] has network_id {res.network_id}; ids must "
                    "equal list positions"
                )
            if res.n_slots != self.n_slots:
                raise ValueError(
                    f"resource {q} has {res.n_slots} timeslots, instance "
                    f"declares {self.n_slots}"
                )
        for i, a in enumerate(self.demands):
            if a.demand_id != i:
                raise ValueError(
                    f"demands[{i}] has demand_id {a.demand_id}; ids must equal "
                    "list positions"
                )
            if a.deadline >= self.n_slots:
                raise ValueError(
                    f"demand {i} deadline {a.deadline} outside timeline "
                    f"0..{self.n_slots - 1}"
                )
        if not self.access:
            self.access = [frozenset(range(len(self.resources)))] * len(self.demands)
        self.access = _validate_access(self.access, len(self.demands), len(self.resources))
        self._instances: list[LineDemandInstance] | None = None

    # ------------------------------------------------------------------

    @property
    def num_networks(self) -> int:
        """Number of resources ``r``."""
        return len(self.resources)

    @property
    def num_demands(self) -> int:
        """Number of demands / processors ``m``."""
        return len(self.demands)

    @property
    def unit_height(self) -> bool:
        """Whether every demand has height exactly 1."""
        return all(a.height == 1.0 for a in self.demands)

    def profit_range(self) -> tuple[float, float]:
        """``(pmin, pmax)`` over all demands."""
        profits = [a.profit for a in self.demands]
        return min(profits), max(profits)

    def length_range(self) -> tuple[int, int]:
        """``(Lmin, Lmax)`` over all demand processing times (Section 7)."""
        lengths = [a.proc_time for a in self.demands]
        return min(lengths), max(lengths)

    # ------------------------------------------------------------------

    def instances(self) -> list[LineDemandInstance]:
        """Expand windows: one instance per (resource, placement) pair."""
        if self._instances is None:
            out: list[LineDemandInstance] = []
            for a in self.demands:
                for q in sorted(self.access[a.demand_id]):
                    for s, e in a.placements():
                        out.append(
                            LineDemandInstance(
                                instance_id=len(out),
                                demand_id=a.demand_id,
                                network_id=q,
                                start=s,
                                end=e,
                                profit=a.profit,
                                height=a.height,
                            )
                        )
            self._instances = out
        return self._instances

    def global_edges_of(self, inst: LineDemandInstance) -> list[GlobalEdge]:
        """The global edge ids (resource, timeslot) the instance covers."""
        return [(inst.network_id, t) for t in range(inst.start, inst.end + 1)]

    def edge_activity(self) -> dict[GlobalEdge, list[int]]:
        """Map every (resource, timeslot) to the instance ids active on it."""
        act: dict[GlobalEdge, list[int]] = {}
        for inst in self.instances():
            for ge in self.global_edges_of(inst):
                act.setdefault(ge, []).append(inst.instance_id)
        return act

    def communication_graph(self) -> Any:
        """Processor communication graph (shared-resource adjacency)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_demands))
        by_net: dict[int, list[int]] = {}
        for i, acc in enumerate(self.access):
            for q in acc:
                by_net.setdefault(q, []).append(i)
        for members in by_net.values():
            for a, b in zip(members, members[1:]):
                g.add_edge(a, b)
            if len(members) <= 50:
                for ia, a in enumerate(members):
                    for b in members[ia + 1:]:
                        g.add_edge(a, b)
        return g
