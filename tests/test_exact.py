"""Cross-checks of the exactness ladder: brute force == MILP ≤ LP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    brute_force_optimal,
    lp_upper_bound,
    random_line_problem,
    random_tree_problem,
    solve_greedy,
    solve_optimal,
    verify_line_solution,
    verify_tree_solution,
)


class TestExactAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_milp_equals_brute_force_tree(self, seed):
        p = random_tree_problem(n=10, m=6, r=2, seed=seed)
        bf = brute_force_optimal(p)
        milp = solve_optimal(p)
        assert milp.profit == pytest.approx(bf.profit, rel=1e-6)
        verify_tree_solution(p, milp)
        verify_tree_solution(p, bf)

    @pytest.mark.parametrize("seed", range(5))
    def test_milp_equals_brute_force_line(self, seed):
        p = random_line_problem(n_slots=12, m=5, r=1, seed=seed, max_len=4)
        bf = brute_force_optimal(p)
        milp = solve_optimal(p)
        assert milp.profit == pytest.approx(bf.profit, rel=1e-6)
        verify_line_solution(p, milp)

    @pytest.mark.parametrize("seed", range(5))
    def test_milp_with_heights(self, seed):
        p = random_tree_problem(n=10, m=6, r=1, seed=seed, height_regime="mixed")
        bf = brute_force_optimal(p)
        milp = solve_optimal(p)
        assert milp.profit == pytest.approx(bf.profit, rel=1e-6)
        verify_tree_solution(p, milp, unit_height=False)

    def test_lp_dominates_milp(self):
        for seed in range(5):
            p = random_tree_problem(n=12, m=8, r=2, seed=seed)
            assert lp_upper_bound(p) >= solve_optimal(p).profit - 1e-6

    def test_brute_force_cap(self):
        p = random_tree_problem(n=10, m=30, r=3, seed=0)
        with pytest.raises(ValueError, match="exceed"):
            brute_force_optimal(p, max_instances=10)


class TestLineTreeReductionOptima:
    """OPT must agree when a pinned-window line problem is re-expressed
    as a path tree-network problem (Section 7's reduction)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_opt_agrees(self, seed):
        from repro import Demand, TreeProblem, line_as_tree
        from repro.network.line import interval_to_endpoints

        p = random_line_problem(n_slots=15, m=6, r=2, seed=seed,
                                window_slack=0.0, max_len=5)
        nets = [line_as_tree(res) for res in p.resources]
        demands = []
        for a in p.demands:
            (s, e) = a.placements()[0]
            u, v = interval_to_endpoints((s, e))
            demands.append(Demand(a.demand_id, u, v, a.profit, a.height))
        tp = TreeProblem(n=p.n_slots + 1, networks=nets, demands=demands,
                         access=list(p.access))
        assert solve_optimal(p).profit == pytest.approx(
            solve_optimal(tp).profit, rel=1e-6
        )


class TestGreedy:
    @pytest.mark.parametrize("order", ["profit", "density"])
    def test_feasible(self, order):
        p = random_tree_problem(n=16, m=12, r=2, seed=3, height_regime="mixed")
        sol = solve_greedy(p, order=order)
        verify_tree_solution(p, sol, unit_height=False)

    def test_line_feasible(self):
        p = random_line_problem(n_slots=30, m=15, r=2, seed=4, max_len=8)
        sol = solve_greedy(p)
        verify_line_solution(p, sol, unit_height=True)

    def test_unknown_order(self):
        p = random_tree_problem(n=8, m=4, r=1, seed=5)
        with pytest.raises(ValueError, match="unknown order"):
            solve_greedy(p, order="alphabetical")

    def test_greedy_not_above_opt(self):
        p = random_tree_problem(n=12, m=8, r=2, seed=6)
        assert solve_greedy(p).profit <= solve_optimal(p).profit + 1e-9


@given(
    n=st.integers(min_value=4, max_value=10),
    m=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=5_000),
)
@settings(max_examples=20, deadline=None)
def test_exactness_ladder_property(n, m, seed):
    p = random_tree_problem(n=n, m=m, r=2, seed=seed, height_regime="mixed")
    bf = brute_force_optimal(p)
    milp = solve_optimal(p)
    lp = lp_upper_bound(p)
    assert abs(bf.profit - milp.profit) <= 1e-6 * max(1.0, bf.profit)
    assert lp >= milp.profit - 1e-6
