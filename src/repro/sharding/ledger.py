"""Per-shard capacity ledgers, the global coordinator view, and the broker.

:class:`ShardedLedger` is the state layer of the sharded admission
engine.  It runs one :class:`~repro.online.state.CapacityLedger` per
shard over that shard's local sub-population, plus a **coordinator**
ledger over the full population that is the single source of truth for
global feasibility, merged profit counters, and the final merged
solution.  Demands are routed by the :class:`~repro.sharding.planner.
ShardPlan`:

* a *local* demand is decided against its shard's ledger (concurrently
  safe — shard edge sets are disjoint) and mirrored into the
  coordinator; if the coordinator refuses (a boundary demand already
  holds one of the route's edges) the tentative shard admission is
  withdrawn — a two-phase commit;
* a *boundary* demand (route crossing a cut) is serialized through the
  :class:`BoundaryBroker`, which decides it directly on the coordinator
  so every edge of the route is priced against the exact global load.

Invariant: for every edge the coordinator's load equals the true total
load, so the union of everything admitted is always feasible — the
coordinator's ``verify()`` re-checks it from first principles.

The :class:`~repro.sharding.driver.ShardedDriver` uses the same classes
in its two-phase replay: shard workers replay their local sub-traces
through stock :func:`~repro.online.driver.replay` (phase A), then the
broker *absorbs* their final admitted sets into the coordinator and
serializes the boundary stream through an unmodified policy bound to the
coordinator (phase B).
"""

from __future__ import annotations

import math

from ..core.instance import TreeProblem
from ..online.events import EventTrace
from ..online.policies import AdmissionPolicy
from ..online.state import CapacityLedger
from ..session.kernel import AdmissionSession, ReplayResult
from .planner import ShardPlan

__all__ = ["ShardedLedger", "BoundaryBroker"]


class ShardedLedger:
    """One :class:`CapacityLedger` per shard plus the coordinator view.

    Parameters
    ----------
    problem:
        The full (unsharded) problem.
    plan:
        The :class:`~repro.sharding.planner.ShardPlan` that routes
        demands.

    Notes
    -----
    Shard ledgers are built lazily: the driver's phase-B merge only
    needs the coordinator (its workers built their own ledgers inside
    :func:`~repro.online.driver.replay`), while direct API users get a
    shard ledger on first touch.
    """

    def __init__(self, problem, plan: ShardPlan):
        self.problem = problem
        self.plan = plan
        #: The exact global capacity view (full instance population).
        self.coordinator = CapacityLedger(problem)
        self._shard_ledgers: list[CapacityLedger | None] = (
            [None] * plan.n_shards
        )
        self._local_ids: list[dict[int, int] | None] = [None] * plan.n_shards

    # -- routing --------------------------------------------------------

    def shards_of(self, demand_id: int) -> tuple[int, ...]:
        """The shards the demand's routes touch (see the plan)."""
        return self.plan.shards_of(demand_id)

    def is_boundary(self, demand_id: int) -> bool:
        """Whether the demand crosses a cut (broker territory)."""
        return self.plan.is_boundary(demand_id)

    def shard_ledger(self, s: int) -> CapacityLedger:
        """Shard ``s``'s ledger over its local sub-population (lazy)."""
        if self._shard_ledgers[s] is None:
            self._shard_ledgers[s] = CapacityLedger(self.plan.subproblem(s))
            self._local_ids[s] = {
                d: i for i, d in enumerate(self.plan.shard_demands[s])
            }
        return self._shard_ledgers[s]

    def _local_id(self, s: int, demand_id: int) -> int:
        self.shard_ledger(s)  # ensure the map exists
        return self._local_ids[s][demand_id]

    def local_demand_id(self, s: int, demand_id: int) -> int:
        """Shard ``s``'s densified id of global demand ``demand_id``
        (which must be local to ``s``) — the mapping the service layer's
        shard mirroring uses."""
        return self._local_id(s, demand_id)

    # -- mutations ------------------------------------------------------

    def try_admit(self, demand_id: int, min_density: float = 0.0) -> int | None:
        """First-fit admit a demand through its route's ledger(s).

        Local demands are decided on their shard's ledger and mirrored
        into the coordinator; when the coordinator refuses (a boundary
        holder occupies the route) the shard admission is withdrawn and
        the demand is rejected — the conservative two-phase commit.
        Boundary demands are decided directly on the coordinator.
        Returns the **global** admitted instance id, or ``None``.
        """
        if self.is_boundary(demand_id):
            return self.coordinator.try_admit(demand_id,
                                              min_density=min_density)
        s = self.plan.shard_of(demand_id)
        led = self.shard_ledger(s)
        local = self._local_id(s, demand_id)
        liid = led.try_admit(local, min_density=min_density)
        if liid is None:
            return None
        gid = self.plan.global_instance_of(s, liid)
        if not self.coordinator.feasible([gid])[0]:
            led.withdraw(local)
            return None
        self.coordinator.admit(gid)
        return gid

    def release(self, demand_id: int) -> None:
        """Release a departed demand from every view that admitted it."""
        if self.coordinator.is_admitted(demand_id):
            self.coordinator.release(demand_id)
        if not self.is_boundary(demand_id):
            s = self.plan.shard_of(demand_id)
            led = self.shard_ledger(s)
            local = self._local_id(s, demand_id)
            if led.is_admitted(local):
                led.release(local)

    # -- merged accounting ---------------------------------------------

    @property
    def realized_profit(self) -> float:
        """Merged realized profit (the coordinator's exact counters)."""
        return self.coordinator.realized_profit

    @property
    def num_admitted(self) -> int:
        """Demands currently holding capacity anywhere."""
        return self.coordinator.num_admitted

    def snapshot(self):
        """The merged admitted set as a verified-renderable solution."""
        return self.coordinator.snapshot()

    def verify(self) -> None:
        """Re-check the merged admitted set and every shard ledger."""
        self.coordinator.verify()
        for led in self._shard_ledgers:
            if led is not None:
                led.verify()


class BoundaryBroker:
    """Serializes the demands that cross a shard cut.

    The broker owns the only code path that touches more than one
    shard's capacity: it *absorbs* each shard's final admitted set into
    the coordinator (phase A hand-off) and then replays the boundary
    event stream — cut-crossing arrivals/departures plus ticks — through
    an unmodified admission policy bound to the coordinator, so every
    registered policy prices boundary routes against the exact global
    load.  Boundary metrics are counter *deltas* over the absorbed
    baseline, so absorbed locals are never double counted (a preemptive
    policy that evicts an absorbed local during the boundary phase shows
    up as a negative profit contribution here, exactly once).
    """

    def __init__(self, sharded: ShardedLedger):
        self.sharded = sharded
        self.absorbed_profit = 0.0
        self.absorbed_count = 0
        #: The boundary policy's price certificate, if it carries one.
        self.certificate: dict | None = None

    # -- phase A hand-off ----------------------------------------------

    def absorb(self, s: int, result: ReplayResult) -> None:
        """Pre-admit shard ``s``'s final admitted set into the coordinator.

        The union over shards is feasible by construction (shard edge
        sets are disjoint and each final set is verified per shard), so
        every mirror admission succeeds.
        """
        plan = self.sharded.plan
        coord = self.sharded.coordinator
        tree = isinstance(self.sharded.problem, TreeProblem)
        ids = plan.shard_demands[s]
        lut = plan._lookup()
        for inst in result.final_solution.selected:
            g = ids[inst.demand_id]
            key = ((g, inst.network_id) if tree
                   else (g, inst.network_id, inst.start, inst.end))
            coord.admit(lut[key])
            self.absorbed_count += 1
        self.absorbed_profit += math.fsum(
            float(inst.profit) for inst in result.final_solution.selected)

    # -- phase B: the serialized boundary replay ------------------------

    def replay_boundary(self, trace: EventTrace, policy: AdmissionPolicy,
                        *, verify: bool = True) -> ReplayResult | None:
        """Stream the cut-crossing demands through ``policy``.

        Mirrors the stock replay loop (same event timing semantics, same
        final ``finish()`` flush) on the coordinator ledger.  Returns a
        :class:`~repro.online.driver.ReplayResult` whose metrics are the
        boundary-phase deltas, or ``None`` when no demand crosses a cut
        (the policy is still bound and flushed so price certificates
        cover the absorbed state).
        """
        ledger = self.sharded.coordinator
        events = self.sharded.plan.boundary_events(trace)
        # A delta-mode session over the coordinator: the baseline capture
        # and per-event timing semantics are the kernel's, shared with
        # every other replay path.
        session = AdmissionSession.over_ledger(ledger, policy,
                                               trace_meta=trace.meta)
        session.feed_many(events)
        result = session.close(verify=verify)
        # The certificate is priced on the coordinator over the *full*
        # population, so it upper-bounds the global offline optimum —
        # computed even when no demand crossed a cut (the driver's merge
        # still uses it then).
        self.certificate = session.certificate
        if not events:
            return None
        return result
