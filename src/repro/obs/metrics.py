"""Zero-dependency metrics registry with Prometheus text exposition.

Three instrument kinds, all plain Python objects with one-slot hot
methods:

* :class:`Counter` — monotonically increasing count (``inc``); can be
  re-seeded from restored state after ``repro resume`` so dashboards
  stay continuous across warm restarts.
* :class:`Gauge` — last-write-wins value (``set``).
* :class:`Histogram` — fixed bucket edges chosen at construction,
  cumulative-bucket export.  Histograms that observe *monotonic time*
  are marked ``timing=True`` and excluded from
  ``export(include_timing=False)``, mirroring the
  ``deterministic_metrics`` split in ``repro.online.metrics``: the
  deterministic view must be byte-stable across identical replays.

:meth:`MetricsRegistry.export` walks names in sorted order and returns
plain dicts/lists only, so ``json.dumps`` of two identical replays is
byte-identical.  :meth:`MetricsRegistry.render_prometheus` produces
the text exposition served by ``{"op":"stats"}`` and by the optional
``repro serve --metrics-port`` scrape endpoint
(:func:`start_metrics_server`, a stdlib ``http.server`` on a daemon
thread).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "start_metrics_server"]

#: Default latency bucket edges, in microseconds (50µs .. 100ms).
DEFAULT_BUCKETS_US = (50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
                      5000.0, 10000.0, 25000.0, 50000.0, 100000.0)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    timing = False
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset_to(self, value) -> None:
        """Re-seed after restoring state (resume continuity)."""
        self.value = value

    def export(self):
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    kind = "gauge"
    timing = False
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def export(self):
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-edge histogram with cumulative-bucket Prometheus export.

    ``timing=True`` marks a histogram fed from monotonic clocks; the
    deterministic export view drops it (wall-dependent numbers must
    never leak into byte-stability comparisons).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "edges", "counts", "sum", "count",
                 "timing")

    def __init__(self, name: str, help: str = "",
                 buckets=DEFAULT_BUCKETS_US, *, timing: bool = False):
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"bucket edges must be sorted ascending: {edges}")
        self.name = name
        self.help = help
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)  # trailing slot = +Inf
        self.sum = 0.0
        self.count = 0
        self.timing = timing

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def export(self):
        cum, acc = [], 0
        for c in self.counts:
            acc += c
            cum.append(acc)
        return {
            "kind": self.kind,
            "buckets": [[e, n] for e, n in zip(self.edges, cum)],
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Accessors return the existing instrument when the name is already
    registered (and refuse to change its kind), so call sites never
    need to coordinate registration order.
    """

    def __init__(self):
        self._metrics: dict = {}

    def _get(self, name: str, cls, *args, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name, *args, **kwargs)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {m.kind}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS_US, *,
                  timing: bool = False) -> Histogram:
        return self._get(name, Histogram, help, buckets, timing=timing)

    def export(self, include_timing: bool = True) -> dict:
        """All instruments as a deterministic, JSON-safe dict.

        Names are emitted sorted; ``include_timing=False`` drops
        monotonic-time histograms so the result is byte-stable across
        two identical replays.
        """
        out = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if not include_timing and m.timing:
                continue
            out[name] = m.export()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                lines.append(f"# HELP {name} {m.help}")
            lines.append(f"# TYPE {name} {m.kind}")
            if m.kind == "histogram":
                acc = 0
                for edge, c in zip(m.edges, m.counts):
                    acc += c
                    lines.append(f'{name}_bucket{{le="{edge:g}"}} {acc}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {m.count}')
                lines.append(f"{name}_sum {m.sum:g}")
                lines.append(f"{name}_count {m.count}")
            else:
                value = m.value
                if value is None:
                    value = "NaN"
                elif isinstance(value, float):
                    value = f"{value:g}"
                lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"


def start_metrics_server(registry: MetricsRegistry, port: int = 0,
                         host: str = "127.0.0.1", on_scrape=None):
    """Serve ``registry.render_prometheus()`` over HTTP on a daemon
    thread; returns the (already running) ``HTTPServer``.

    ``on_scrape`` runs before each render — the service passes its
    metric-sync hook so scrapes see fresh gauges.  ``port=0`` binds an
    ephemeral port; read it back from ``server.server_address[1]``.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            if on_scrape is not None:
                try:
                    on_scrape()
                except Exception:
                    pass  # a broken sync hook must not kill the scrape
            body = registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt, *args):
            pass  # scrapes should not spam the service's stderr

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics", daemon=True)
    thread.start()
    return server
