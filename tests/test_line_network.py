"""Tests for the line-network substrate and the line↔tree reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LineNetwork, line_as_tree
from repro.network.line import interval_to_endpoints


class TestLineNetwork:
    def test_basic(self):
        ln = LineNetwork(10)
        assert ln.n_slots == 10
        ln.validate_interval((0, 9))
        ln.validate_interval((3, 3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LineNetwork(0)

    def test_rejects_bad_interval(self):
        ln = LineNetwork(5)
        for bad in [(-1, 2), (0, 5), (3, 2)]:
            with pytest.raises(ValueError):
                ln.validate_interval(bad)

    def test_overlaps(self):
        assert LineNetwork.overlaps((0, 3), (3, 5))
        assert LineNetwork.overlaps((2, 2), (0, 4))
        assert not LineNetwork.overlaps((0, 2), (3, 5))

    def test_length_and_midpoint(self):
        assert LineNetwork.length((2, 5)) == 4
        assert LineNetwork.midpoint((2, 5)) == 3
        assert LineNetwork.midpoint((2, 2)) == 2

    def test_slots(self):
        ln = LineNetwork(8)
        assert list(ln.slots((2, 4))) == [2, 3, 4]


class TestLineTreeReduction:
    def test_line_as_tree_shape(self):
        ln = LineNetwork(5, network_id=3)
        t = line_as_tree(ln)
        assert t.n == 6
        assert t.network_id == 3
        assert t.has_edge(0, 1) and t.has_edge(4, 5)

    @given(
        n_slots=st.integers(min_value=1, max_value=30),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_iff_paths_share_edge(self, n_slots, data):
        """Interval overlap on the timeline == edge intersection on the path
        graph (Section 1's reformulation)."""
        ln = LineNetwork(n_slots)
        t = line_as_tree(ln)
        iv = st.tuples(
            st.integers(min_value=0, max_value=n_slots - 1),
            st.integers(min_value=0, max_value=n_slots - 1),
        ).map(lambda p: (min(p), max(p)))
        a, b = data.draw(iv), data.draw(iv)
        ua, va = interval_to_endpoints(a)
        ub, vb = interval_to_endpoints(b)
        shared = set(t.path_edges(ua, va)) & set(t.path_edges(ub, vb))
        assert LineNetwork.overlaps(a, b) == bool(shared)

    def test_interval_slot_count_matches_path_length(self):
        ln = LineNetwork(12)
        t = line_as_tree(ln)
        for (s, e) in [(0, 0), (2, 7), (0, 11)]:
            u, v = interval_to_endpoints((s, e))
            assert len(t.path_edges(u, v)) == LineNetwork.length((s, e))
