"""Tree decompositions and layered decompositions (Section 4)."""

from .balanced import balancing_decomposition
from .base import TreeDecomposition
from .ideal import ideal_decomposition
from .layered import LayeredDecomposition, line_layers, tree_layers
from .rooted import root_fixing_decomposition

__all__ = [
    "LayeredDecomposition",
    "TreeDecomposition",
    "balancing_decomposition",
    "ideal_decomposition",
    "line_layers",
    "root_fixing_decomposition",
    "tree_layers",
]
