"""Tests for the vectorized core primitives the engine refactor added:
Euler-tour index, batched conflict adjacency, the incremental active set,
and batched dual raises."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import (
    ConflictIndex,
    DualState,
    make_tree,
    random_line_problem,
    random_tree_problem,
)
from repro.core.conflict import ActiveConflictSet

from helpers import ScalarConflictIndex, ScalarDualState


def _index(problem, with_trees=True):
    insts = problem.instances()
    edges = [problem.global_edges_of(d) for d in insts]
    trees = None
    if with_trees and hasattr(problem, "networks"):
        trees = {net.network_id: net for net in problem.networks}
    return ConflictIndex(insts, edges, trees=trees)


class TestEulerTourIndex:
    @pytest.mark.parametrize("topology", ["path", "star", "caterpillar",
                                          "binary", "random"])
    def test_batch_lca_matches_climbing(self, topology):
        t = make_tree(30, topology, seed=5)
        ei = t.euler_index()
        pairs = list(itertools.combinations(range(30), 2))
        us = np.array([a for a, _ in pairs])
        vs = np.array([b for _, b in pairs])
        got = ei.batch_lca(us, vs)
        want = np.array([t.lca(a, b) for a, b in pairs])
        assert (got == want).all()

    def test_is_ancestor(self):
        t = make_tree(25, "random", seed=6)
        ei = t.euler_index()
        pairs = list(itertools.product(range(25), repeat=2))
        a = np.array([x for x, _ in pairs])
        b = np.array([y for _, y in pairs])
        got = ei.is_ancestor(a, b)
        want = np.array([t.lca(x, y) == x for x, y in pairs])
        assert (got == want).all()

    def test_path_overlap_matrix_matches_edge_sets(self):
        t = make_tree(24, "caterpillar", seed=7)
        ei = t.euler_index()
        rng = np.random.default_rng(7)
        us = rng.integers(0, 24, 15)
        vs = (us + 1 + rng.integers(0, 22, 15)) % 24
        M = ei.path_overlap_matrix(us, vs)
        paths = [set(t.path_edges(int(u), int(v))) for u, v in zip(us, vs)]
        for i, j in itertools.product(range(15), repeat=2):
            assert M[i, j] == bool(paths[i] & paths[j])


class TestBatchedAdjacency:
    @pytest.mark.parametrize("seed", range(5))
    def test_tree_adjacency_matches_scalar(self, seed):
        p = random_tree_problem(n=14, m=10, r=2, seed=seed)
        ci = _index(p)
        sci = ScalarConflictIndex(p.instances(),
                                  [p.global_edges_of(d) for d in p.instances()])
        pop = set(range(0, len(p.instances()), 2))
        assert ci.adjacency(pop) == sci.subgraph(pop)

    @pytest.mark.parametrize("seed", range(5))
    def test_line_adjacency_matches_scalar(self, seed):
        p = random_line_problem(n_slots=20, m=8, r=2, seed=seed, max_len=6)
        ci = _index(p, with_trees=False)
        sci = ScalarConflictIndex(p.instances(),
                                  [p.global_edges_of(d) for d in p.instances()])
        pop = set(range(len(p.instances())))
        assert ci.adjacency(pop) == sci.subgraph(pop)

    def test_bucket_fallback_matches_scalar(self):
        p = random_tree_problem(n=14, m=10, r=2, seed=9)
        ci = _index(p, with_trees=False)  # no geometry → bucket expansion
        assert ci._geometry == "buckets"
        sci = ScalarConflictIndex(p.instances(),
                                  [p.global_edges_of(d) for d in p.instances()])
        pop = set(range(len(p.instances())))
        assert ci.adjacency(pop) == sci.subgraph(pop)

    def test_empty_population(self):
        p = random_tree_problem(n=10, m=5, r=1, seed=0)
        assert _index(p).adjacency(set()) == {}


class TestActiveConflictSet:
    def test_unit_blocking_matches_brute_force(self):
        p = random_tree_problem(n=16, m=12, r=2, seed=11)
        ci = _index(p)
        insts = p.instances()
        edges = [frozenset(p.global_edges_of(d)) for d in insts]
        active = ci.active_set()
        members: list[int] = []
        for iid in range(0, len(insts), 3):
            if not active.blocked(iid):
                active.add(iid)
                members.append(iid)
        used_edges = set().union(*(edges[i] for i in members)) if members else set()
        used_demands = {insts[i].demand_id for i in members}
        got = active.blocked_mask(np.arange(len(insts)))
        for iid in range(len(insts)):
            want = (insts[iid].demand_id in used_demands
                    or bool(edges[iid] & used_edges))
            assert got[iid] == want

    def test_capacity_mode_respects_heights(self):
        p = random_line_problem(n_slots=16, m=10, r=1, seed=12,
                                height_regime="narrow", hmin=0.3)
        ci = _index(p, with_trees=False)
        insts = p.instances()
        active = ci.active_set(capacities=True)
        loads: dict = {}
        used_demands: set = set()
        for iid in range(len(insts)):
            inst = insts[iid]
            ge = p.global_edges_of(inst)
            fits = inst.demand_id not in used_demands and all(
                loads.get(e, 0.0) + inst.height <= 1.0 + 1e-9 for e in ge
            )
            assert active.blocked(iid) == (not fits)
            if fits:
                active.add(iid)
                used_demands.add(inst.demand_id)
                for e in ge:
                    loads[e] = loads.get(e, 0.0) + inst.height

    def test_remove_reverts_blocking(self):
        p = random_tree_problem(n=12, m=8, r=1, seed=13)
        ci = _index(p)
        active = ci.active_set()
        nbrs = ci.neighbors(0)
        active.add(0)
        assert 0 in active
        for nb in nbrs:
            assert active.blocked(nb)
        active.remove(0)
        assert 0 not in active
        for nb in nbrs:
            assert not active.blocked(nb)
        with pytest.raises(KeyError):
            active.remove(0)


class TestBatchedDuals:
    def _states(self, seed):
        p = random_tree_problem(n=14, m=10, r=2, seed=seed)
        insts = p.instances()
        edges = [tuple(p.global_edges_of(d)) for d in insts]
        args = ([d.profit for d in insts], [d.height for d in insts],
                [d.demand_id for d in insts], edges)
        crit = {i: edges[i][:2] for i in range(len(insts))}
        vec = DualState(*args)
        vec.set_critical(crit)
        ref = ScalarDualState(*args)
        return p, insts, crit, vec, ref

    @pytest.mark.parametrize("seed", range(4))
    def test_unit_batch_equals_sequential(self, seed):
        p, insts, crit, vec, ref = self._states(seed)
        ci = _index(p)
        adj = ci.adjacency(set(range(len(insts))))
        from repro.distributed.mis import greedy_mis

        mis, _ = greedy_mis(adj)
        batch = sorted(mis)
        vec.raise_unit_batch(np.asarray(batch, dtype=np.int64))
        for iid in batch:
            ref.raise_unit(iid, crit[iid])
        for iid in range(len(insts)):
            assert vec.lhs(iid) == ref.lhs(iid)
        lhs_all = vec.lhs_batch(np.arange(len(insts)))
        for iid in range(len(insts)):
            assert lhs_all[iid] == pytest.approx(ref.lhs(iid), abs=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_narrow_batch_equals_sequential(self, seed):
        p, insts, crit, vec, ref = self._states(seed)
        ci = _index(p)
        from repro.distributed.mis import greedy_mis

        mis, _ = greedy_mis(ci.adjacency(set(range(len(insts)))))
        batch = sorted(mis)
        vec.raise_narrow_batch(np.asarray(batch, dtype=np.int64))
        for iid in batch:
            ref.raise_narrow(iid, crit[iid])
        for iid in range(len(insts)):
            assert vec.lhs(iid) == ref.lhs(iid)

    def test_raise_log_matches(self, ):
        p, insts, crit, vec, ref = self._states(2)
        batch = [0, 5]
        vec.raise_unit_batch(np.asarray(batch, dtype=np.int64))
        for iid in batch:
            ref.raise_unit(iid, crit[iid])
        assert vec.raise_log == ref.raise_log

    def test_plan_reuse_is_exact(self):
        p, insts, crit, vec, ref = self._states(3)
        arr = np.arange(len(insts))
        plan = vec.make_plan(arr)
        before = vec.lhs_batch(arr).copy()
        assert (vec.lhs_batch(plan=plan) == before).all()
        vec.raise_unit_batch(np.asarray([0], dtype=np.int64))
        assert (vec.lhs_batch(plan=plan) == vec.lhs_batch(arr)).all()

    def test_unsatisfied_mask_matches_scalar_comparison(self):
        p, insts, crit, vec, ref = self._states(1)
        vec.raise_unit_batch(np.asarray([0, 3], dtype=np.int64))
        for iid in [0, 3]:
            ref.raise_unit(iid, crit[iid])
        arr = np.arange(len(insts))
        mask = vec.unsatisfied_mask(arr, 0.5)
        for iid in range(len(insts)):
            want = ref.lhs(iid) < 0.5 * ref.profits[iid] - 1e-12
            assert mask[iid] == want
