"""The conflict relation over demand instances (Section 2).

Two demand instances *conflict* iff they belong to the same demand, or
they belong to the same network and their routes share an edge (overlap).
A feasible unit-height solution is exactly an independent set in the
conflict graph; the distributed algorithm computes maximal independent
sets of sub-populations of it every step (Section 5).

:class:`ConflictIndex` answers conflict queries and enumerates conflict
edges without materialising the full quadratic graph unless asked: it
keeps per-demand buckets and per-(network, edge) activity buckets, so the
neighbourhood of an instance is the union of a few bucket lookups.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ConflictIndex"]


class ConflictIndex:
    """Conflict queries over a fixed population of demand instances.

    Parameters
    ----------
    instances:
        The demand instances (tree or line; anything exposing
        ``instance_id``, ``demand_id``, ``network_id``).
    global_edges:
        ``global_edges[iid]`` is the list of global edge ids instance
        ``iid`` is active on (``(network, edge)`` or ``(resource, slot)``).
        Instance ids must be ``0 .. len(instances) - 1``.
    """

    def __init__(self, instances: Sequence, global_edges: Sequence[Sequence]):
        if len(instances) != len(global_edges):
            raise ValueError("one edge list per instance required")
        self._instances = list(instances)
        self._edges_of: list[frozenset] = [frozenset(ge) for ge in global_edges]
        self._by_demand: dict[int, list[int]] = {}
        self._by_edge: dict[object, list[int]] = {}
        for pos, (inst, ge) in enumerate(zip(self._instances, self._edges_of)):
            iid = inst.instance_id
            if iid != pos:
                raise ValueError(
                    f"instance ids must be dense 0..N-1 in order; position "
                    f"{pos} holds id {iid}"
                )
            self._by_demand.setdefault(inst.demand_id, []).append(iid)
            for e in ge:
                self._by_edge.setdefault(e, []).append(iid)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instances)

    def instance(self, iid: int):
        """The instance with id ``iid``."""
        return self._instances[iid]

    def edges_of(self, iid: int) -> frozenset:
        """Global edges instance ``iid`` is active on."""
        return self._edges_of[iid]

    def overlap(self, a: int, b: int) -> bool:
        """Same network and edge-intersecting routes (Section 2)."""
        ia, ib = self._instances[a], self._instances[b]
        if ia.network_id != ib.network_id:
            return False
        ea, eb = self._edges_of[a], self._edges_of[b]
        if len(ea) > len(eb):
            ea, eb = eb, ea
        return any(e in eb for e in ea)

    def conflicting(self, a: int, b: int) -> bool:
        """Same demand, or overlapping (Section 2's conflict relation)."""
        if a == b:
            return False
        ia, ib = self._instances[a], self._instances[b]
        if ia.demand_id == ib.demand_id:
            return True
        return self.overlap(a, b)

    def neighbors(self, iid: int, population: set[int] | None = None) -> set[int]:
        """All instances conflicting with ``iid``.

        Restricted to ``population`` if given.  Computed as the union of
        the sibling bucket (same demand) and the activity buckets of the
        edges on ``iid``'s route.
        """
        inst = self._instances[iid]
        out: set[int] = set()
        for other in self._by_demand[inst.demand_id]:
            if other != iid and (population is None or other in population):
                out.add(other)
        for e in self._edges_of[iid]:
            for other in self._by_edge[e]:
                if other != iid and (population is None or other in population):
                    out.add(other)
        return out

    def is_independent(self, iids: Iterable[int]) -> bool:
        """Whether the given instance ids are pairwise non-conflicting."""
        ids = list(iids)
        demands: set[int] = set()
        used_edges: set[object] = set()
        for iid in ids:
            inst = self._instances[iid]
            if inst.demand_id in demands:
                return False
            demands.add(inst.demand_id)
            for e in self._edges_of[iid]:
                if e in used_edges:
                    return False
            used_edges.update(self._edges_of[iid])
        return True

    def subgraph(self, population: Iterable[int]):
        """Adjacency dict of the conflict graph induced on ``population``.

        Used to hand sub-populations to the MIS routines.
        """
        pop = set(population)
        return {iid: self.neighbors(iid, pop) for iid in pop}

    def to_networkx(self, population: Iterable[int] | None = None):
        """Export the (induced) conflict graph as :class:`networkx.Graph`."""
        import networkx as nx

        pop = set(population) if population is not None else set(range(len(self)))
        g = nx.Graph()
        g.add_nodes_from(pop)
        for iid in pop:
            for other in self.neighbors(iid, pop):
                if other > iid:
                    g.add_edge(iid, other)
        return g
