"""The two-phase primal-dual framework (Section 3.2 / Section 6.1).

Every algorithm in the paper — the sequential Appendix-A algorithm, the
Panconesi–Sozio line algorithms, and this paper's tree and line algorithms
— instantiates one engine:

* **First phase** processes the layered-decomposition groups in *epochs*
  (one per group index, merged across networks).  Each epoch runs a
  schedule of *stages* with satisfaction targets ``1 - ξ^j``; each stage
  iterates *steps*: collect the still-unsatisfied instances ``U`` of the
  group, compute a maximal independent set ``I`` of the conflict graph
  induced on ``U``, raise every ``d ∈ I`` to tightness (unit rule
  ``δ = slack/(|π|+1)`` or narrow rule ``δ = slack/(1+2h|π|²)``), and push
  ``I`` on the stack.
* **Second phase** pops the stack and greedily inserts instances while
  feasibility (edge-disjointness, or height capacities) permits.

The engine is *governed by* the critical-set size ``∆`` (from the layered
decomposition) and the slackness ``λ`` it achieves; Lemma 3.1 then gives
profit ≥ ``λ/(∆+1)``·OPT for the unit rule and Lemma 6.1 gives
``λ/(2∆²+1)``·OPT for the narrow rule.  The engine also keeps the
distributed round ledger of Section 5: each step costs ``Time(MIS)``
rounds (simulated Luby) plus one dual-broadcast round, and the second
phase costs one round per pushed step.

Instantiations:

=====================  ======  ==========================  =============
algorithm              rule    stage schedule              bound
=====================  ======  ==========================  =============
tree unit (§5)         unit    ξ = 14/15, b = ⌈log_ξ ε⌉    7 + ε
tree narrow (§6)       narrow  ξ = 73/(73+hmin)            73 + ε
line unit (§7)         unit    ξ = 8/9                     4 + ε
line narrow (§7)       narrow  ξ = 19/(19+hmin)            19 + ε
Panconesi–Sozio (§5R)  unit    single stage @ 1/(5+ε)      4·(5+ε)
Appendix A             unit    singleton MIS, λ = 1        ∆ + 1
=====================  ======  ==========================  =============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..core.conflict import ConflictIndex
from ..core.duals import DualState
from ..distributed.mis import greedy_mis, luby_mis, priority_mis

__all__ = [
    "EngineInput",
    "EngineConfig",
    "EngineStats",
    "TwoPhaseEngine",
    "unit_xi",
    "narrow_xi",
    "stage_count",
]

_EPS = 1e-12


def unit_xi(delta: int) -> float:
    """Per-stage shrink ξ = 2∆′/(2∆′+1), ∆′ = ∆+1 (Section 5).

    ∆ = 6 gives 14/15 (trees); ∆ = 3 gives 8/9 (lines).
    """
    dprime = delta + 1
    return (2.0 * dprime) / (2.0 * dprime + 1.0)


def narrow_xi(delta: int, hmin: float) -> float:
    """ξ = c/(c + hmin) with c = 1 + 2∆² (Section 6's "suitable constant").

    Chosen so the kill-chain argument of Lemma 5.1 doubles profits: a
    raise of ``d1`` contributes at least ``2·hmin·|π|·δ ≥ 2·hmin·δ`` (or
    ``δ`` via the shared α) to a conflicting ``d2``'s LHS, and
    ``δ ≥ ξ^j p(d1)/(1+2∆²)``; requiring the stage gap
    ``(ξ^{j-1}-ξ^j)p(d2)`` to absorb that forces ``p(d2) ≥ 2·p(d1)``
    exactly when ``ξ/(1-ξ) = (1+2∆²)/hmin``.
    """
    if not (0.0 < hmin <= 0.5):
        raise ValueError(f"hmin must lie in (0, 1/2], got {hmin}")
    c = 1.0 + 2.0 * delta * delta
    return c / (c + hmin)


def stage_count(xi: float, epsilon: float) -> int:
    """Smallest ``b`` with ``ξ^b ≤ ε`` (the stages-per-epoch schedule)."""
    if not (0.0 < epsilon < 1.0):
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    if not (0.0 < xi < 1.0):
        raise ValueError(f"xi must lie in (0, 1), got {xi}")
    b = int(np.ceil(np.log(epsilon) / np.log(xi)))
    return max(b, 1)


@dataclass
class EngineInput:
    """Compiled, network-agnostic form of a problem for the engine.

    Attributes
    ----------
    instances:
        Demand instances (ids dense ``0..N-1`` in list order).
    edges_of:
        ``edges_of[iid]`` = global edges the instance is active on.
    critical:
        ``critical[iid]`` = the layered decomposition's ``π(d)`` as
        global edges (must be a subset of ``edges_of[iid]``).
    groups:
        Epoch schedule: ``groups[k]`` = instance ids of ``G_{k+1}``,
        merged across networks (Figure 7's ``G_k = ∪_q G_k^{(q)}``).
    delta:
        Critical-set size ``∆`` the layering guarantees.
    """

    instances: Sequence
    edges_of: list[frozenset]
    critical: dict[int, tuple]
    groups: list[list[int]]
    delta: int

    def __post_init__(self) -> None:
        n = len(self.instances)
        if len(self.edges_of) != n:
            raise ValueError("edges_of must align with instances")
        grouped = [iid for grp in self.groups for iid in grp]
        if sorted(grouped) != list(range(n)):
            raise ValueError("groups must partition instance ids 0..N-1")
        for iid, crit in self.critical.items():
            if not set(crit) <= set(self.edges_of[iid]):
                raise ValueError(f"critical edges of {iid} not on its route")


@dataclass
class EngineConfig:
    """Engine knobs.

    Attributes
    ----------
    rule:
        ``"unit"`` (Section 3.2 raise) or ``"narrow"`` (Section 6.1).
    epsilon:
        The ε of the theorems; drives the stage schedule.
    xi:
        Per-stage shrink; defaults from ``rule`` and ``∆`` (see
        :func:`unit_xi`/:func:`narrow_xi`).
    hmin:
        Minimum height (needed by the narrow schedule).
    single_stage_target:
        If set, run Panconesi–Sozio style: a single stage per epoch with
        fixed satisfaction target (e.g. ``1/(5+ε)``); ``xi`` is ignored.
    mis:
        ``"luby"`` (round-faithful, randomized), ``"greedy"``
        (deterministic, fast, counted as 1 round/step), or
        ``"priority"`` (deterministic *and* round-faithful: the static-
        priority protocol the agent runtime executes).
    seed:
        RNG seed for Luby.
    capacity_phase2:
        If ``True`` the second phase packs by height capacities instead
        of edge-disjointness (the arbitrary-height semantics).
    max_steps:
        Safety valve per stage (raises if exceeded — the theory bounds
        steps by ``O(log pmax/pmin)``, so hitting this is a bug).
    """

    rule: Literal["unit", "narrow"] = "unit"
    epsilon: float = 0.1
    xi: float | None = None
    hmin: float = 0.5
    single_stage_target: float | None = None
    mis: Literal["luby", "greedy", "priority"] = "luby"
    seed: int | None = 0
    capacity_phase2: bool = False
    raise_alpha: bool = True
    max_steps: int = 100_000


@dataclass
class EngineStats:
    """Run ledger: everything the complexity theorems talk about."""

    epochs: int = 0
    stages: int = 0
    steps: int = 0
    mis_rounds: int = 0
    phase1_rounds: int = 0
    phase2_rounds: int = 0
    raises: int = 0
    steps_per_stage: list[int] = field(default_factory=list)
    dual_objective: float = 0.0
    realized_lambda: float = 0.0
    opt_upper_bound: float = 0.0
    delta: int = 0
    stage_schedule: list[float] = field(default_factory=list)

    @property
    def total_rounds(self) -> int:
        """Distributed rounds: phase 1 (MIS + broadcast per step) + phase 2."""
        return self.phase1_rounds + self.phase2_rounds

    @property
    def max_steps_in_a_stage(self) -> int:
        """Largest step count of any (epoch, stage) — Lemma 5.1's L."""
        return max(self.steps_per_stage, default=0)


class TwoPhaseEngine:
    """Run the two-phase framework on a compiled :class:`EngineInput`."""

    def __init__(self, inp: EngineInput, config: EngineConfig | None = None):
        self.inp = inp
        self.cfg = config or EngineConfig()
        self.conflicts = ConflictIndex(inp.instances, inp.edges_of)
        profits = [d.profit for d in inp.instances]
        heights = [d.height for d in inp.instances]
        demand_of = [d.demand_id for d in inp.instances]
        self.duals = DualState(profits, heights, demand_of, inp.edges_of)
        self._rng = np.random.default_rng(self.cfg.seed)

    # ------------------------------------------------------------------

    def _stage_targets(self) -> list[float]:
        cfg = self.cfg
        if cfg.single_stage_target is not None:
            return [cfg.single_stage_target]
        xi = cfg.xi
        if xi is None:
            xi = (
                unit_xi(self.inp.delta)
                if cfg.rule == "unit"
                else narrow_xi(self.inp.delta, cfg.hmin)
            )
        b = stage_count(xi, cfg.epsilon)
        return [1.0 - xi**j for j in range(1, b + 1)]

    def _mis(self, population: set[int]) -> tuple[set[int], int]:
        adj = self.conflicts.subgraph(population)
        if self.cfg.mis == "greedy":
            return greedy_mis(adj)
        if self.cfg.mis == "priority":
            return priority_mis(adj)
        return luby_mis(adj, self._rng)

    def run(self) -> tuple[list, EngineStats]:
        """Execute both phases; returns (selected instances, stats)."""
        stats = EngineStats(delta=self.inp.delta)
        targets = self._stage_targets()
        stats.stage_schedule = targets
        stack: list[list[int]] = []
        duals = self.duals
        if self.cfg.rule == "unit":
            include_alpha = self.cfg.raise_alpha
            raise_fn = lambda iid, crit: duals.raise_unit(iid, crit, include_alpha)
        else:
            raise_fn = duals.raise_narrow
        critical = self.inp.critical

        # ---------------- First phase ----------------
        for group in self.inp.groups:
            stats.epochs += 1
            if not group:
                continue
            for target in targets:
                stats.stages += 1
                stage_steps = 0
                while True:
                    unsat = {
                        iid
                        for iid in group
                        if duals.lhs(iid) < target * duals.profits[iid] - _EPS
                    }
                    if not unsat:
                        break
                    mis, rounds = self._mis(unsat)
                    for iid in mis:
                        raise_fn(iid, critical[iid])
                        stats.raises += 1
                    stack.append(sorted(mis))
                    stats.steps += 1
                    stage_steps += 1
                    stats.mis_rounds += rounds
                    stats.phase1_rounds += rounds + 1
                    if stage_steps > self.cfg.max_steps:
                        raise RuntimeError(
                            f"stage exceeded {self.cfg.max_steps} steps — the "
                            "kill-chain bound should prevent this"
                        )
                stats.steps_per_stage.append(stage_steps)

        # ---------------- Second phase ----------------
        selected = self._second_phase(stack, stats)

        stats.dual_objective = duals.objective()
        stats.realized_lambda = duals.realized_lambda()
        stats.opt_upper_bound = duals.opt_upper_bound()
        return selected, stats

    def _second_phase(self, stack: list[list[int]], stats: EngineStats) -> list:
        """Pop in reverse raise order; insert while feasible."""
        chosen: list[int] = []
        used_demands: set[int] = set()
        if self.cfg.capacity_phase2:
            load: dict[object, float] = {}
            for group in reversed(stack):
                stats.phase2_rounds += 1
                for iid in group:
                    inst = self.inp.instances[iid]
                    if inst.demand_id in used_demands:
                        continue
                    edges = self.inp.edges_of[iid]
                    if all(
                        load.get(e, 0.0) + inst.height <= 1.0 + 1e-9 for e in edges
                    ):
                        chosen.append(iid)
                        used_demands.add(inst.demand_id)
                        for e in edges:
                            load[e] = load.get(e, 0.0) + inst.height
        else:
            used_edges: set[object] = set()
            for group in reversed(stack):
                stats.phase2_rounds += 1
                for iid in group:
                    inst = self.inp.instances[iid]
                    if inst.demand_id in used_demands:
                        continue
                    edges = self.inp.edges_of[iid]
                    if not (edges & used_edges):
                        chosen.append(iid)
                        used_demands.add(inst.demand_id)
                        used_edges |= edges
        return [self.inp.instances[iid] for iid in chosen]


def run_framework(
    inp: EngineInput, config: EngineConfig | None = None
) -> tuple[list, EngineStats]:
    """Convenience wrapper: build the engine and run it."""
    return TwoPhaseEngine(inp, config).run()
