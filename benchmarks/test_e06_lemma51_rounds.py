"""E6 (Lemma 5.1 + Theorem 5.3): distributed round complexity.

The bound is ``O(Time(MIS) · log n · log(1/ε) · log(pmax/pmin))``.  We
sweep each parameter independently (others pinned) and regenerate the
scaling series: rounds must grow sub-linearly in n (logarithmically many
epochs) and the per-stage step count must respect the kill-chain bound
``1 + log₂(pmax/pmin)``.
"""

from __future__ import annotations

import math

from repro import random_tree_problem, solve_tree_unit

from common import emit


def run_experiment():
    rows = []
    series: dict[str, list] = {"n": [], "eps": [], "profit": []}

    # --- sweep n (epochs ~ 2 log n) ---
    for n in [16, 32, 64, 128, 256]:
        p = random_tree_problem(n=n, m=n, r=1, seed=1, profit_ratio=8.0)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1)
        rows.append(["n sweep", f"n={n}", sol.stats["epochs"],
                     sol.stats["steps"], sol.stats["total_rounds"],
                     sol.stats["max_steps_in_a_stage"]])
        series["n"].append((n, sol.stats["epochs"], sol.stats["total_rounds"]))

    # --- sweep ε (stages ~ log_ξ ε) ---
    for eps in [0.4, 0.2, 0.1, 0.05]:
        p = random_tree_problem(n=48, m=48, r=1, seed=2, profit_ratio=8.0)
        sol = solve_tree_unit(p, epsilon=eps, seed=2)
        rows.append(["eps sweep", f"ε={eps}", sol.stats["epochs"],
                     sol.stats["steps"], sol.stats["total_rounds"],
                     sol.stats["max_steps_in_a_stage"]])
        series["eps"].append((eps, sol.stats["total_rounds"]))

    # --- sweep pmax/pmin (steps/stage ≤ 1 + log₂ ratio) ---
    for ratio in [1.5, 8.0, 64.0, 512.0]:
        p = random_tree_problem(n=48, m=96, r=1, seed=3, profit_ratio=ratio)
        sol = solve_tree_unit(p, epsilon=0.2, seed=3)
        pmin, pmax = p.profit_range()
        bound = 1 + math.log2(pmax / pmin)
        rows.append(["profit sweep", f"pmax/pmin={ratio:g}", sol.stats["epochs"],
                     sol.stats["steps"], sol.stats["total_rounds"],
                     f"{sol.stats['max_steps_in_a_stage']} (≤{bound:.1f})"])
        series["profit"].append(
            (pmax / pmin, sol.stats["max_steps_in_a_stage"], bound)
        )

    emit(
        "E06",
        "Lemma 5.1 / Thm 5.3: round complexity scaling",
        ["sweep", "value", "epochs", "steps", "total rounds", "max steps/stage"],
        rows,
        notes=(
            "Paper: rounds = O(Time(MIS)·log n·log(1/ε)·log(pmax/pmin)); "
            "steps per stage ≤ 1 + log₂(pmax/pmin) (kill chains, Claim 5.2)."
        ),
    )
    return series


def test_lemma51_round_complexity(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # Epochs grow logarithmically: 16× more vertices ⇒ ≤ +9 epochs
    # (2·log₂ 16 = 8, plus slack 1).
    n_small = dict((n, e) for n, e, _ in series["n"])
    assert n_small[256] - n_small[16] <= 2 * math.log2(256 / 16) + 2
    # Rounds grow with log(1/ε): ε=0.05 costs more rounds than ε=0.4.
    eps_rounds = dict(series["eps"])
    assert eps_rounds[0.05] >= eps_rounds[0.4]
    # Kill-chain bound holds on every profit sweep point.
    for _ratio, steps, bound in series["profit"]:
        assert steps <= bound + 1e-9
    # Rounds stay polylogarithmic in practice: far below m·r steps.
    for n, _e, rounds in series["n"]:
        assert rounds < 40 * (math.log2(n) ** 2 + 10)
