"""E5 (Theorem 5.3): the distributed (7+ε) unit-height tree algorithm.

Measured approximation ratio (OPT / algorithm profit) against the MILP
optimum for small/medium instances and the LP upper bound for larger
ones, across topologies and network counts.  Shape claims: every measured
ratio ≤ 7/(1-ε); ratios in practice are far better (typically < 2);
and the dual certificate (objective/λ) really upper-bounds OPT.
"""

from __future__ import annotations

from repro import lp_upper_bound, random_tree_problem, solve_optimal, solve_tree_unit
from repro.core.solution import verify_tree_solution

from common import emit, geomean

EPS = 0.1
CASES = [
    # (n, m, r, topology, seeds)
    (16, 12, 1, "random", range(3)),
    (16, 12, 3, "random", range(3)),
    (32, 24, 2, "random", range(3)),
    (32, 24, 2, "path", range(3)),
    (64, 48, 2, "caterpillar", range(2)),
    (128, 96, 2, "random", range(2)),
]


def run_experiment():
    rows = []
    all_ratios = []
    cert_ok = True
    for n, m, r, topo, seeds in CASES:
        ratios, lp_ratios, rounds = [], [], []
        for seed in seeds:
            p = random_tree_problem(n=n, m=m, r=r, seed=seed, topology=topo)
            sol = solve_tree_unit(p, epsilon=EPS, seed=seed)
            verify_tree_solution(p, sol, unit_height=True)
            opt = solve_optimal(p)
            lp = lp_upper_bound(p)
            ratios.append(opt.profit / max(sol.profit, 1e-12))
            lp_ratios.append(lp / max(sol.profit, 1e-12))
            rounds.append(sol.stats["total_rounds"])
            cert_ok &= sol.stats["opt_upper_bound"] >= opt.profit - 1e-6
        all_ratios.extend(ratios)
        rows.append(
            [f"{topo} n={n} m={m} r={r}", geomean(ratios), max(ratios),
             geomean(lp_ratios), sum(rounds) / len(rounds)]
        )
    emit(
        "E05",
        f"Theorem 5.3: tree unit-height (7+ε), ε={EPS} — measured ratios",
        ["workload", "OPT/ALG geo", "OPT/ALG max", "LP/ALG geo", "avg rounds"],
        rows,
        notes=(
            f"Paper bound: OPT/ALG ≤ 7/(1-ε) = {7/(1-EPS):.2f}. "
            "Measured ratios should sit far below the bound."
        ),
    )
    return all_ratios, cert_ok


def test_thm53_tree_unit_ratio(benchmark):
    ratios, cert_ok = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    bound = 7 / (1 - EPS)
    assert all(r <= bound + 1e-6 for r in ratios)
    assert geomean(ratios) < 3.0  # far inside the worst-case bound
    assert cert_ok
