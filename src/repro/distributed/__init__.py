"""Distributed substrate: synchronous simulator, MIS, protocol runtimes."""

from .mis import greedy_mis, is_maximal_independent_set, luby_mis, priority_mis
from .runtime import LineUnitRuntime, ProtocolRuntime, TreeNarrowRuntime, TreeUnitRuntime
from .simulator import ProcessorBase, RoundContext, SimStats, SyncSimulator

__all__ = [
    "LineUnitRuntime",
    "ProcessorBase",
    "ProtocolRuntime",
    "RoundContext",
    "SimStats",
    "SyncSimulator",
    "TreeNarrowRuntime",
    "TreeUnitRuntime",
    "greedy_mis",
    "is_maximal_independent_set",
    "luby_mis",
    "priority_mis",
]
