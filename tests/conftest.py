"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Demand, LineNetwork, LineProblem, TreeNetwork, TreeProblem, WindowDemand


@pytest.fixture
def paper_tree() -> TreeNetwork:
    """The 14-vertex example tree of Figures 3/6 of the paper.

    The paper labels vertices 1..14; we shift to 0..13.  The edge set is
    pinned by the paper's worked statements: path(4, 13) = 4,2,5,8,13
    with π(⟨4,13⟩) = {⟨2,4⟩, ⟨2,5⟩} and µ = 2 under rooting at 1
    (Appendix A); C(2) = {2,4} with χ(2) = {1,5} and
    C(5) = {5,9,8,2,12,13,4} with χ(5) = {1} (Section 4.1); bending
    points of ⟨4,13⟩ w.r.t. 3 and 9 are 2 and 5 (Section 4.4).  Hence:
    1-2, 2-4, 2-5, 5-9, 5-8, 8-12, 8-13, plus 1-3, 3-7, 1-6, 6-10,
    6-11, 1-14 for the remaining vertices.
    """
    # 0-based: 0=1, 1=2, 2=3, 3=4, 4=5, 5=6, 6=7, 7=8, 8=9, 9=10,
    #          10=11, 11=12, 12=13, 13=14
    edges = [
        (0, 1),   # 1-2
        (1, 3),   # 2-4
        (1, 4),   # 2-5
        (4, 8),   # 5-9
        (4, 7),   # 5-8
        (7, 11),  # 8-12
        (7, 12),  # 8-13
        (0, 2),   # 1-3
        (2, 6),   # 3-7
        (0, 5),   # 1-6
        (5, 9),   # 6-10
        (5, 10),  # 6-11
        (0, 13),  # 1-14
    ]
    return TreeNetwork(14, edges)


@pytest.fixture
def fig2_problem() -> TreeProblem:
    """Figure 2's instance: three demands sharing edge (4, 5) on one tree.

    Paper vertices 1..14 → 0..13.  Demands ⟨1,10⟩, ⟨2,3⟩, ⟨12,13⟩ with
    heights 0.4, 0.7, 0.3 for the arbitrary-height illustration.
    """
    # Build a tree where the three demand paths all share the edge 4-5
    # (paper labels); Figure 2's tree differs from Figure 6's.  We use:
    # path 1-4-5-10, 2-4-5-3(?)  Simplest faithful layout: a tree where
    # vertices 4 and 5 are adjacent cut vertices with 1, 2, 12 hanging
    # off 4 and 10, 3, 13 hanging off 5.
    # 0-based: keep paper labels minus one.
    edges = [
        (3, 4),    # 4-5, the shared edge
        (0, 3),    # 1-4
        (1, 3),    # 2-4
        (11, 3),   # 12-4
        (9, 4),    # 10-5
        (2, 4),    # 3-5
        (12, 4),   # 13-5
        (5, 0), (6, 0), (7, 1), (8, 2), (10, 9), (13, 12),  # filler leaves
    ]
    net = TreeNetwork(14, edges, network_id=0)
    demands = [
        Demand(0, 0, 9, profit=1.0, height=0.4),   # ⟨1,10⟩
        Demand(1, 1, 2, profit=1.0, height=0.7),   # ⟨2,3⟩
        Demand(2, 11, 12, profit=1.0, height=0.3), # ⟨12,13⟩
    ]
    return TreeProblem(n=14, networks=[net], demands=demands)


@pytest.fixture
def fig1_problem() -> LineProblem:
    """Figure 1's instance: heights A=0.7, B=0.5, C=0.4 on one resource.

    A and B overlap (0.7+0.5 > 1 — mutually exclusive); C overlaps B only
    (0.5+0.4 ≤ 1) and is time-disjoint from A, so {A, C} and {B, C} are
    feasible but {A, B} is not — exactly Figure 1's caption.
    """
    res = LineNetwork(10, network_id=0)
    demands = [
        # A: slots 0..4, height .7
        WindowDemand(0, release=0, deadline=4, proc_time=5, profit=1.0, height=0.7),
        # B: slots 3..8, height .5 (overlaps A on slots 3-4)
        WindowDemand(1, release=3, deadline=8, proc_time=6, profit=1.0, height=0.5),
        # C: slots 6..9, height .4 (overlaps B on 6-8; disjoint from A)
        WindowDemand(2, release=6, deadline=9, proc_time=4, profit=1.0, height=0.4),
    ]
    return LineProblem(n_slots=10, resources=[res], demands=demands)

