"""Tests for the fixed distributed round schedule (Section 5)."""

from __future__ import annotations

import pytest

from repro import random_line_problem, random_tree_problem, solve_line_unit, solve_tree_unit
from repro.algorithms.schedule import (
    RoundSchedule,
    line_unit_schedule,
    narrow_schedule,
    scheduled_rounds,
    tree_unit_schedule,
)


class TestScheduleArithmetic:
    def test_round_composition(self):
        s = RoundSchedule(epochs=3, stages_per_epoch=2, steps_per_stage=4,
                          time_mis=5)
        assert s.total_steps == 24
        assert s.phase1_rounds == 24 * 6
        assert s.phase2_rounds == 24
        assert s.total_rounds == 24 * 7

    def test_tree_epochs_logarithmic(self):
        a = tree_unit_schedule(64, 0.1, 8.0, 1.0, time_mis=1)
        b = tree_unit_schedule(1024, 0.1, 8.0, 1.0, time_mis=1)
        assert b.epochs - a.epochs == 2 * 4  # 2 per doubling

    def test_line_epochs_track_length_ratio(self):
        s = line_unit_schedule(1, 16, 0.1, 4.0, 1.0, time_mis=1)
        assert s.epochs == 5  # buckets [1,2), [2,4), [4,8), [8,16), [16,32)

    def test_narrow_stage_inflation(self):
        coarse = narrow_schedule(10, 0.1, hmin=0.5, pmax=4, pmin=1, delta=6,
                                 time_mis=1)
        fine = narrow_schedule(10, 0.1, hmin=0.05, pmax=4, pmin=1, delta=6,
                               time_mis=1)
        assert fine.stages_per_epoch > 5 * coarse.stages_per_epoch

    def test_uniform_profits_single_step(self):
        s = tree_unit_schedule(16, 0.1, 3.0, 3.0, time_mis=1)
        assert s.steps_per_stage == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            tree_unit_schedule(0, 0.1, 2.0, 1.0)
        with pytest.raises(ValueError):
            line_unit_schedule(0, 4, 0.1, 2.0, 1.0)
        with pytest.raises(ValueError):
            tree_unit_schedule(8, 0.1, 1.0, 2.0)


class TestScheduleDominatesAdaptiveRun:
    """The adaptive engine must never exceed the fixed worst-case budget
    — otherwise the paper's synchronization argument would break."""

    @pytest.mark.parametrize("seed", range(4))
    def test_tree(self, seed):
        p = random_tree_problem(n=24, m=20, r=2, seed=seed, profit_ratio=16.0)
        sol = solve_tree_unit(p, epsilon=0.2, seed=seed)
        assert sol.stats["total_rounds"] <= scheduled_rounds(p, 0.2)

    @pytest.mark.parametrize("seed", range(4))
    def test_line(self, seed):
        p = random_line_problem(n_slots=30, m=14, r=2, seed=seed, max_len=8)
        sol = solve_line_unit(p, epsilon=0.2, seed=seed)
        assert sol.stats["total_rounds"] <= scheduled_rounds(p, 0.2)

    def test_budget_grows_polylogarithmically(self):
        # 16× more vertices/demands costs ~(log growth)² ≈ 2.2× here
        # (epochs × Time(MIS) are each a log factor) — far below the 16×
        # a linear-round algorithm would pay.
        small = random_tree_problem(n=256, m=256, r=1, seed=9, profit_ratio=8.0)
        big = random_tree_problem(n=4096, m=4096, r=1, seed=9, profit_ratio=8.0)
        assert scheduled_rounds(big, 0.1) < 3 * scheduled_rounds(small, 0.1)
