"""Baseline: the Panconesi–Sozio distributed line algorithms [15, 16],
reformulated in the two-phase framework exactly as the Section 5 Remark
describes.

Differences from this paper's algorithms (same layering, ``∆ = 3``):

* **single stage per epoch** — a demand instance that becomes
  ``1/(5+ε)``-satisfied is ignored for the rest of the first phase,
  instead of the multi-stage gradual schedule;
* consequently the slackness parameter is only ``λ = 1/(5+ε)``, and
  Lemma 3.1 yields ``(∆+1)/λ = 4·(5+ε) = (20+ε)`` for the unit case
  (vs. (4+ε) here).

For arbitrary heights PS obtain (55+ε) with a different, sharper analysis
of their raising scheme; the reconstruction below reuses our Section 6.1
narrow rule with the single-stage threshold, which Lemma 6.1 bounds at
``(2∆²+1)·(5+ε)``.  The *measured* profit comparison (benchmark E10) is
unaffected by which analysis is tighter.
"""

from __future__ import annotations

from typing import Literal

from ..core.instance import LineProblem
from ..core.solution import Solution
from .compile import compile_line
from .framework import EngineConfig, TwoPhaseEngine
from .registry import register
from .tree_arbitrary import combine_by_network

__all__ = ["solve_ps_line_unit", "solve_ps_line_arbitrary", "solve_ps_baseline"]


@register(
    "ps-line-unit",
    family="line",
    description="Panconesi–Sozio unit baseline, single stage (20+ε)",
    accepts=("epsilon", "mis", "seed", "instance_filter"),
)
def solve_ps_line_unit(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
    instance_filter=None,
) -> Solution:
    """PS unit-height line algorithm: single stage at ``1/(5+ε)`` → (20+ε)."""
    inp = compile_line(problem, instance_filter=instance_filter)
    if not inp.instances:
        return Solution(selected=[], stats={"algorithm": "ps-line-unit(20+eps)",
                                            "empty": True})
    target = 1.0 / (5.0 + epsilon)
    cfg = EngineConfig(
        rule="unit",
        epsilon=epsilon,
        single_stage_target=target,
        mis=mis,
        seed=seed,
    )
    selected, stats = TwoPhaseEngine(inp, cfg).run()
    return Solution(
        selected=selected,
        stats={
            "algorithm": "ps-line-unit(20+eps)",
            "epsilon": epsilon,
            "delta": stats.delta,
            "epochs": stats.epochs,
            "stages": stats.stages,
            "steps": stats.steps,
            "mis_rounds": stats.mis_rounds,
            "total_rounds": stats.total_rounds,
            "realized_lambda": stats.realized_lambda,
            "dual_objective": stats.dual_objective,
            "opt_upper_bound": stats.opt_upper_bound,
            "approx_guarantee": (stats.delta + 1) / max(stats.realized_lambda, 1e-12),
        },
    )


@register(
    "ps-line-arbitrary",
    family="line",
    description="Panconesi–Sozio arbitrary-height baseline (55+ε)",
    accepts=("epsilon", "mis", "seed"),
)
def solve_ps_line_arbitrary(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """PS-style arbitrary-height baseline (reconstruction; see module doc)."""
    wide = solve_ps_line_unit(
        problem,
        epsilon=epsilon,
        mis=mis,
        seed=seed,
        instance_filter=lambda d: not d.narrow,
    )
    wide.stats["algorithm"] = "ps-line-wide(20+eps)"

    narrow_heights = [a.height for a in problem.demands if a.narrow]
    if not narrow_heights:
        narrow = Solution(selected=[], stats={"algorithm": "ps-line-narrow",
                                              "empty": True})
    else:
        inp = compile_line(problem, instance_filter=lambda d: d.narrow)
        cfg = EngineConfig(
            rule="narrow",
            epsilon=epsilon,
            hmin=min(narrow_heights),
            single_stage_target=1.0 / (5.0 + epsilon),
            mis=mis,
            seed=seed,
            capacity_phase2=True,
        )
        selected, stats = TwoPhaseEngine(inp, cfg).run()
        narrow = Solution(
            selected=selected,
            stats={
                "algorithm": "ps-line-narrow",
                "delta": stats.delta,
                "total_rounds": stats.total_rounds,
                "realized_lambda": stats.realized_lambda,
                "opt_upper_bound": stats.opt_upper_bound,
            },
        )
    return combine_by_network(wide, narrow, "ps-line-arbitrary(55+eps)")


@register(
    "ps-baseline",
    family="line",
    description="Panconesi–Sozio baseline (unit or arbitrary, by regime)",
    accepts=("epsilon", "mis", "seed"),
)
def solve_ps_baseline(
    problem: LineProblem,
    *,
    epsilon: float = 0.1,
    mis: Literal["luby", "greedy"] = "luby",
    seed: int | None = 0,
) -> Solution:
    """The PS baseline matched to the problem's height regime."""
    if problem.unit_height:
        return solve_ps_line_unit(problem, epsilon=epsilon, mis=mis, seed=seed)
    return solve_ps_line_arbitrary(problem, epsilon=epsilon, mis=mis, seed=seed)
