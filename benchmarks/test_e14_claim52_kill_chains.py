"""E14 (Claim 5.2 / Lemma 5.1): kill-chain profit doubling.

Within a stage, a demand instance can only stay unsatisfied if a
conflicting instance of at least *twice* its profit was raised — so a
stage runs at most ``1 + log₂(pmax/pmin)`` steps.  We build adversarial
profit ladders (geometric profit chains of mutually conflicting
instances, the worst case for the bound) and measure the longest stage.
"""

from __future__ import annotations

import math

from repro import Demand, TreeNetwork, TreeProblem, solve_tree_unit

from common import emit


def ladder_problem(depth: int, base: float = 16.0) -> TreeProblem:
    """All demands span the single edge of a 2-vertex tree; profits form
    a geometric ladder.

    Every pair conflicts, so each step raises exactly one instance, and a
    steep enough ladder (base ≫ the kill threshold) keeps every heavier
    demand unsatisfied after each raise — one stage walks the entire
    chain, the tight case of Lemma 5.1.
    """
    net = TreeNetwork(2, [(0, 1)], network_id=0)
    demands = [Demand(i, 0, 1, profit=float(base**i)) for i in range(depth)]
    return TreeProblem(n=2, networks=[net], demands=demands)


def run_experiment():
    rows = []
    measured = []
    for depth in [2, 4, 8, 16]:
        p = ladder_problem(depth)
        sol = solve_tree_unit(p, epsilon=0.2, seed=1, mis="greedy")
        pmin, pmax = p.profit_range()
        bound = 1 + math.log2(pmax / pmin)
        longest = sol.stats["max_steps_in_a_stage"]
        measured.append((longest, bound, depth))
        rows.append([f"ladder depth={depth}", f"{pmax/pmin:.0g}", longest,
                     f"{bound:.0f}", sol.stats["steps"]])
    # Random profits for contrast: stages stay short.
    from repro import random_tree_problem

    for ratio in [4.0, 64.0]:
        p = random_tree_problem(n=32, m=64, r=1, seed=5, profit_ratio=ratio)
        sol = solve_tree_unit(p, epsilon=0.2, seed=5)
        pmin, pmax = p.profit_range()
        bound = 1 + math.log2(pmax / pmin)
        longest = sol.stats["max_steps_in_a_stage"]
        measured.append((longest, bound, None))
        rows.append([f"random pmax/pmin={ratio:g}", f"{pmax/pmin:.1f}",
                     longest, f"{bound:.1f}", sol.stats["steps"]])
    emit(
        "E14",
        "Claim 5.2: kill chains double profits ⇒ steps/stage ≤ 1+log₂(pmax/pmin)",
        ["workload", "pmax/pmin", "max steps/stage", "bound", "total steps"],
        rows,
        notes=(
            "Geometric profit ladders where everything conflicts realise "
            "the bound (almost) with equality; random profits stay far "
            "below it."
        ),
    )
    return measured


def test_claim52_kill_chains(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for longest, bound, depth in measured:
        assert longest <= bound + 1e-9
    # The ladders genuinely stress the bound: with a steep ladder the
    # longest stage walks the entire 16-rung chain one raise at a time.
    deepest = [m for m in measured if m[2] == 16][0]
    assert deepest[0] >= 15
