"""repro — Distributed primal-dual scheduling on line and tree networks.

A complete reproduction of *"Distributed Algorithms for Scheduling on
Line and Tree Networks"* (Chakaravarthy, Roy, Sabharwal; arXiv:1205.1924,
IPDPS 2013 as "... with Non-uniform Bandwidths").

Public API (see README for a walkthrough):

* problems — :class:`TreeProblem`, :class:`LineProblem`, built from
  :class:`Demand` / :class:`WindowDemand` plus :class:`TreeNetwork` /
  :class:`LineNetwork`, or sampled via :func:`random_tree_problem` /
  :func:`random_line_problem`;
* the paper's solvers — :func:`solve_tree_unit` (7+ε),
  :func:`solve_tree_arbitrary` (80+ε), :func:`solve_line_unit` (4+ε),
  :func:`solve_line_arbitrary` (23+ε);
* baselines — :func:`solve_ps_line_unit` / :func:`solve_ps_line_arbitrary`
  (Panconesi–Sozio), :func:`solve_sequential_tree` (Appendix A),
  :func:`solve_greedy`;
* exact — :func:`solve_optimal` (MILP), :func:`lp_upper_bound`,
  :func:`brute_force_optimal`;
* decompositions — :func:`ideal_decomposition` (Lemma 4.1) and friends;
* verification — :func:`verify_tree_solution`, :func:`verify_line_solution`.
"""

from .algorithms import (
    EngineConfig,
    EngineInput,
    TwoPhaseEngine,
    brute_force_optimal,
    compile_line,
    compile_tree,
    lp_upper_bound,
    solve_greedy,
    solve_line_arbitrary,
    solve_line_narrow,
    solve_line_unit,
    solve_optimal,
    solve_ps_line_arbitrary,
    solve_ps_line_unit,
    solve_sequential_tree,
    solve_tree_arbitrary,
    solve_tree_narrow,
    solve_tree_unit,
)
from .core import (
    ConflictIndex,
    Demand,
    DualState,
    FeasibilityError,
    LineDemandInstance,
    LineProblem,
    Solution,
    TreeDemandInstance,
    TreeProblem,
    WindowDemand,
    verify_line_solution,
    verify_tree_solution,
)
from .decomposition import (
    LayeredDecomposition,
    TreeDecomposition,
    balancing_decomposition,
    ideal_decomposition,
    line_layers,
    root_fixing_decomposition,
    tree_layers,
)
from .capacitated import (
    lp_upper_bound_capacitated,
    normalize_uniform_capacity,
    solve_line_capacitated,
    solve_optimal_capacitated,
    solve_tree_capacitated,
)
from .distributed import LineUnitRuntime, ProtocolRuntime, SyncSimulator, TreeUnitRuntime
from .io import (
    load_problem,
    load_solution,
    load_trace,
    save_problem,
    save_solution,
    save_trace,
)
from .network import LineNetwork, TreeNetwork, line_as_tree
from .online import (
    ARRIVAL_PROCESSES,
    AdmissionPolicy,
    Arrival,
    CapacityLedger,
    Departure,
    EventTrace,
    POLICY_NAMES,
    ReplayMetrics,
    ReplayResult,
    Tick,
    bursty_trace,
    diurnal_trace,
    generate_trace,
    make_policy,
    offline_optimum,
    poisson_trace,
    replay,
    with_offline,
)
from .report import (
    render_comparison,
    render_decomposition,
    render_gantt,
    render_replay,
    render_solution_summary,
    render_sweep,
    render_tree,
)
from .runners import BatchRunner, Job, ReplayJob, ReplayRunner, RunResult
from .sharding import (
    BoundaryBroker,
    ShardedDriver,
    ShardedLedger,
    ShardPlan,
    ShardPlanner,
)
from .workloads import TREE_TOPOLOGIES, make_tree, random_line_problem, random_tree_problem

__version__ = "1.0.0"

__all__ = [
    "ARRIVAL_PROCESSES",
    "AdmissionPolicy",
    "Arrival",
    "BatchRunner",
    "CapacityLedger",
    "ConflictIndex",
    "Demand",
    "Departure",
    "DualState",
    "EventTrace",
    "POLICY_NAMES",
    "ReplayJob",
    "ReplayMetrics",
    "ReplayResult",
    "ReplayRunner",
    "Tick",
    "EngineConfig",
    "EngineInput",
    "FeasibilityError",
    "Job",
    "LayeredDecomposition",
    "LineDemandInstance",
    "LineNetwork",
    "LineProblem",
    "RunResult",
    "BoundaryBroker",
    "ShardPlan",
    "ShardPlanner",
    "ShardedDriver",
    "ShardedLedger",
    "Solution",
    "TreeDecomposition",
    "TreeDemandInstance",
    "TreeNetwork",
    "TreeProblem",
    "TREE_TOPOLOGIES",
    "TwoPhaseEngine",
    "WindowDemand",
    "LineUnitRuntime",
    "ProtocolRuntime",
    "SyncSimulator",
    "TreeUnitRuntime",
    "balancing_decomposition",
    "brute_force_optimal",
    "bursty_trace",
    "diurnal_trace",
    "generate_trace",
    "load_problem",
    "load_solution",
    "load_trace",
    "make_policy",
    "offline_optimum",
    "poisson_trace",
    "replay",
    "with_offline",
    "lp_upper_bound_capacitated",
    "normalize_uniform_capacity",
    "render_comparison",
    "render_decomposition",
    "render_gantt",
    "render_replay",
    "render_solution_summary",
    "render_sweep",
    "render_tree",
    "save_problem",
    "save_solution",
    "save_trace",
    "solve_line_capacitated",
    "solve_optimal_capacitated",
    "solve_tree_capacitated",
    "compile_line",
    "compile_tree",
    "ideal_decomposition",
    "line_as_tree",
    "line_layers",
    "lp_upper_bound",
    "make_tree",
    "random_line_problem",
    "random_tree_problem",
    "root_fixing_decomposition",
    "solve_greedy",
    "solve_line_arbitrary",
    "solve_line_narrow",
    "solve_line_unit",
    "solve_optimal",
    "solve_ps_line_arbitrary",
    "solve_ps_line_unit",
    "solve_sequential_tree",
    "solve_tree_arbitrary",
    "solve_tree_narrow",
    "solve_tree_unit",
    "tree_layers",
    "verify_line_solution",
    "verify_tree_solution",
    "__version__",
]
