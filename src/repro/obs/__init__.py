"""Zero-dependency observability: metrics, tracing, provenance, top.

The layer the rest of the system threads through:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-edge histograms
  behind a :class:`MetricsRegistry` with deterministic ``export()`` and
  Prometheus text exposition (``repro serve --metrics-port``).
* :mod:`repro.obs.tracing` — ``perf_counter_ns`` span tracing into a
  lock-free per-process flight-recorder ring, dumpable as Chrome
  ``trace_event`` JSON (``{"op": "trace"}``, ``repro trace``, atexit
  crash dump).
* :mod:`repro.obs.explain` — per-demand decision provenance
  (``{"op": "explain", "demand": k}``).
* :mod:`repro.obs.dashboard` — ``repro top``, the live optimality
  dashboard (events/s, admit/reject/evict rates, commit lag,
  profit vs ``OPT≤(dual)`` gap).

Everything is stdlib-only, off by default, and write-only telemetry:
with recording disabled the instrumented hot paths pay one attribute
check, and timing never feeds an admission decision, so the replay's
bit-exact determinism (and the DET003 lint contract) is untouched.
"""

from .dashboard import fetch_stats, render_dashboard, request_once, run_top
from .explain import explain_demand
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    start_metrics_server,
)
from .tracing import (
    RECORDER,
    FlightRecorder,
    chrome_trace,
    disable,
    enable,
    install_crash_dump,
    is_enabled,
    record_complete,
    span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECORDER",
    "chrome_trace",
    "disable",
    "enable",
    "explain_demand",
    "fetch_stats",
    "install_crash_dump",
    "is_enabled",
    "record_complete",
    "render_dashboard",
    "request_once",
    "run_top",
    "span",
    "start_metrics_server",
]
