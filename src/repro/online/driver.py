"""The replay driver: one pass over a trace through one policy.

:func:`replay` owns the event loop and the ledger lifecycle — policies
only decide admissions and evictions.  Every event's *policy* work is
timed individually: the per-event latency percentiles in the metrics
cover arrivals, departures and ticks alike, so tick-triggered batch
flushes land in the tail the same way arrival-triggered ones do, and the
end-of-trace ``finish()`` flush — often the single most expensive
operation for batching policies — contributes one extra sample of its
own.  The ledger bookkeeping the driver performs on a departure
(``ledger.release``) happens *outside* the timed window, so the
percentiles measure decision latency, not the driver's own accounting.
Ticks and the end-of-trace flush let batching policies drain their
buffers.  The final admitted set is re-verified against the problem
definition from first principles, so a buggy policy cannot silently
oversubscribe an edge.

Admission decisions are deterministic given (trace, policy
configuration): the only nondeterminism in the result is wall-clock
timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.solution import Solution
from .events import Arrival, Departure, EventTrace, Tick
from .metrics import ReplayMetrics, latency_percentiles
from .policies import AdmissionPolicy
from .state import CapacityLedger

__all__ = ["ReplayResult", "assemble_result", "certificate_of", "replay",
           "stream_events"]


@dataclass
class ReplayResult:
    """Everything one replay produced.

    Attributes
    ----------
    metrics:
        The flat :class:`~repro.online.metrics.ReplayMetrics` record.
    admission_log:
        ``(demand_id, instance_id)`` in admission order (never shrinks;
        includes demands that later departed or were evicted).
    eviction_log:
        ``(demand_id, instance_id)`` in eviction order — the demands a
        preemptive policy displaced (empty for non-preemptive policies).
    final_solution:
        The instances still admitted when the trace ended, as a
        verified-feasible :class:`~repro.core.solution.Solution`.
    policy_stats:
        The policy's own counters (gates, flushes, ...).
    trace_meta:
        The trace's provenance dict, echoed for reports.
    """

    metrics: ReplayMetrics
    admission_log: list = field(default_factory=list)
    eviction_log: list = field(default_factory=list)
    final_solution: Solution | None = None
    policy_stats: dict = field(default_factory=dict)
    trace_meta: dict = field(default_factory=dict)


def stream_events(ledger: CapacityLedger, events, policy: AdmissionPolicy):
    """The timed event loop shared by :func:`replay` and the sharded
    :class:`~repro.sharding.ledger.BoundaryBroker`.

    ``policy`` must already be bound to ``ledger``.  Returns
    ``(arrivals, departures, ticks, latencies, elapsed_s)``.  Every
    event's *policy* work is timed individually; the ledger bookkeeping
    on a departure (``ledger.release``) happens outside the timed
    window, and the final ``finish()`` flush — often the single most
    expensive operation for batching policies — contributes one extra
    latency sample of its own.
    """
    latencies: list[float] = []
    arrivals = departures = ticks = 0
    t_start = time.perf_counter()
    for ev in events:
        if isinstance(ev, Arrival):
            arrivals += 1
            t0 = time.perf_counter()
            policy.on_arrival(ev.demand_id)
            latencies.append(time.perf_counter() - t0)
        elif isinstance(ev, Departure):
            departures += 1
            # The ledger's own bookkeeping is not policy work: release
            # before starting the clock, so the latency sample measures
            # only the policy's decision path.
            if ledger.is_admitted(ev.demand_id):
                ledger.release(ev.demand_id)
            t0 = time.perf_counter()
            policy.on_departure(ev.demand_id)
            latencies.append(time.perf_counter() - t0)
        elif isinstance(ev, Tick):
            ticks += 1
            t0 = time.perf_counter()
            policy.on_tick(ev.time)
            latencies.append(time.perf_counter() - t0)
    t0 = time.perf_counter()
    policy.finish()
    latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - t_start
    return arrivals, departures, ticks, latencies, elapsed


def certificate_of(policy: AdmissionPolicy) -> dict | None:
    """A price-carrying policy's upper-bound certificate, else ``None``.

    Called after the replay clock stops, so the certificate never
    pollutes the latency percentiles.
    """
    certify = getattr(policy, "price_certificate", None)
    return certify() if callable(certify) else None


def assemble_result(ledger: CapacityLedger, policy: AdmissionPolicy, *,
                    events: int, arrivals: int, departures: int, ticks: int,
                    latencies: list, elapsed: float, trace_meta: dict,
                    certificate: dict | None,
                    baseline: dict | None = None,
                    final_solution=None) -> "ReplayResult":
    """Build the metrics/logs/stats record both replay loops share.

    ``baseline`` holds counter and log offsets captured before the loop
    ran (``accepted`` / ``evicted`` log lengths, ``realized`` /
    ``forfeited`` / ``penalty`` counters) — the sharded
    :class:`~repro.sharding.ledger.BoundaryBroker` reports *deltas*
    over absorbed state; ``None`` means a fresh ledger.
    """
    base = baseline or {}
    base_accepted = base.get("accepted", 0)
    base_evicted = base.get("evicted", 0)
    realized = ledger.realized_profit - base.get("realized", 0.0)
    penalty = ledger.penalty_paid - base.get("penalty", 0.0)
    accepted = len(ledger.admission_log) - base_accepted
    pct = latency_percentiles(latencies)
    metrics = ReplayMetrics(
        policy=policy.name,
        events=events,
        arrivals=arrivals,
        departures=departures,
        ticks=ticks,
        accepted=accepted,
        rejected=arrivals - accepted,
        acceptance_ratio=accepted / arrivals if arrivals else 0.0,
        realized_profit=realized,
        evictions=len(ledger.eviction_log) - base_evicted,
        forfeited_profit=ledger.forfeited_profit - base.get("forfeited", 0.0),
        penalty_paid=penalty,
        penalty_adjusted_profit=realized - penalty,
        elapsed_s=elapsed,
        events_per_sec=events / elapsed if elapsed > 0 else 0.0,
        latency_p50_us=pct["p50_us"],
        latency_p90_us=pct["p90_us"],
        latency_p99_us=pct["p99_us"],
        latency_mean_us=pct["mean_us"],
        dual_upper_bound=(certificate["upper_bound"]
                          if certificate else None),
    )
    policy_stats = dict(policy.stats)
    if certificate:
        policy_stats["dual_certificate"] = certificate
    return ReplayResult(
        metrics=metrics,
        admission_log=list(ledger.admission_log[base_accepted:]),
        eviction_log=list(ledger.eviction_log[base_evicted:]),
        final_solution=final_solution,
        policy_stats=policy_stats,
        trace_meta=dict(trace_meta),
    )


def replay(trace: EventTrace, policy: AdmissionPolicy, *,
           verify: bool = True) -> ReplayResult:
    """Stream ``trace`` through ``policy`` and measure the outcome.

    Parameters
    ----------
    trace:
        The event stream plus its frozen demand population.
    policy:
        An unbound :class:`~repro.online.policies.AdmissionPolicy`; it
        is bound to a fresh :class:`~repro.online.state.CapacityLedger`
        here, so one policy object can be reused across replays.
    verify:
        Re-check the final admitted set against the problem definition
        (cheap; disable only in throughput benchmarks).
    """
    ledger = CapacityLedger(trace.problem)
    policy.bind(ledger)
    arrivals, departures, ticks, latencies, elapsed = stream_events(
        ledger, trace.events, policy
    )

    if verify:
        ledger.verify()
    return assemble_result(
        ledger, policy,
        events=len(trace.events), arrivals=arrivals,
        departures=departures, ticks=ticks,
        latencies=latencies, elapsed=elapsed,
        trace_meta=trace.meta,
        certificate=certificate_of(policy),
        final_solution=ledger.snapshot(),
    )
