"""Shard planning: partition a problem along decomposition cut lines.

The Section-4 decompositions already define natural *cut lines* of a
network: deleting a balancer (Section 4.2) splits a tree into subtrees,
and the depth levels of a tree decomposition (Section 4.1) slice its
edges into bands.  :class:`ShardPlanner` turns either structure into an
**edge partition** — every global edge of every network is owned by
exactly one shard — and classifies each demand by the shards its
instances' routes touch:

* a **local** demand touches edges of exactly one shard; its admission
  can be decided entirely inside that shard, concurrently with every
  other shard;
* a **boundary** demand crosses a cut: its route touches edges of two or
  more shards, so it must be serialized through the coordinator (the
  :class:`~repro.sharding.ledger.BoundaryBroker`).

Two strategies:

* ``subtree`` — repeated balancer splits (the Section 4.2 machinery):
  the tree is cut at centroids until at least ``shards`` connected
  pieces exist, and the pieces are bin-packed into shards by size.  On
  line problems the timeline's "subtrees" are its intervals, so this
  degenerates to contiguous timeslot blocks.
* ``layer`` — edges are banded by their depth in the ideal tree
  decomposition (the deeper endpoint's ``H``-depth) and the bands are
  chunked contiguously into shards with balanced edge counts.  On line
  problems this is again the contiguous block partition.

The plan also quantifies its own quality: :attr:`ShardPlan.boundary_count`
and :attr:`ShardPlan.boundary_profit` measure the population that is
*decided under different information* than in the single-ledger replay.
They are the first-order scale of the divergence, not a hard bound: a
boundary demand admitted early by the unsharded driver can block local
demands whose own decisions then differ too (knock-on effects), so
pathological traces can diverge by more.  On the pinned regression
corpus the observed divergence stays within ``boundary_profit`` /
``boundary_count`` and is change-detected there.

Sharding pays off when demands are *local* (short routes relative to the
network) and access sets keep a demand's instances on few networks; a
demand with instances on many networks almost always straddles a cut.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Sequence

from ..core.instance import (
    GlobalEdge,
    LineProblem,
    TreeProblem,
    subproblem_of,
)
from ..decomposition.ideal import ideal_decomposition
from ..network.tree import TreeNetwork
from ..online.events import Arrival, Departure, EventTrace, Tick

__all__ = ["ShardPlan", "ShardPlanner", "SHARD_STRATEGIES"]

#: Partition strategies :class:`ShardPlanner` understands.
SHARD_STRATEGIES = ("subtree", "layer")


# ----------------------------------------------------------------------
# Per-network edge partitions
# ----------------------------------------------------------------------


def _subtree_vertex_groups(tree: TreeNetwork, shards: int) -> list[set[int]]:
    """Cut ``tree`` at balancers into bin-packable connected pieces.

    Each split removes a centroid ``z`` (Section 4.2) and re-attaches it
    to the largest resulting piece, so every group stays a connected
    subtree and no singleton fragments appear.  Splitting continues
    until the largest group fits an ideal bin (``n / shards`` vertices)
    — merely reaching ``shards`` pieces is not enough, since one
    centroid cut can shed tiny fringe subtrees while leaving two huge
    halves — capped at ``4 × shards`` groups so the number of cut lines
    (and with it the boundary-demand population) stays bounded.  Groups
    that cannot be split further are frozen.  Fully deterministic: ties
    break on the smallest vertex id.
    """
    target = max(1, tree.n // shards)
    groups: list[set[int]] = [set(range(tree.n))]
    frozen: list[set[int]] = []
    while groups and len(groups) + len(frozen) < 4 * shards:
        groups.sort(key=lambda g: (-len(g), min(g)))
        if (len(groups) + len(frozen) >= shards
                and len(groups[0]) <= target):
            break
        g = groups.pop(0)
        if len(g) == 1:
            frozen.append(g)
            continue
        z = tree.find_balancer(g)
        pieces = tree.split_component(z, g)
        if len(pieces) <= 1:
            # A 2-vertex component (or a degenerate balancer): the split
            # would reproduce the same group.  Freeze it instead.
            frozen.append(g)
            continue
        pieces.sort(key=lambda p: (-len(p), min(p)))
        pieces[0].add(z)  # z is T-adjacent to every piece: still connected
        groups.extend(pieces)
    return groups + frozen


def _pack_groups(groups: Sequence[set[int]], shards: int) -> list[int]:
    """Bin-pack vertex groups into ``shards`` bins, largest first.

    Returns ``shard_of_group`` aligned with ``groups``.  Deterministic:
    groups are ordered by (size desc, min vertex), bins by (load, id).
    """
    order = sorted(range(len(groups)),
                   key=lambda i: (-len(groups[i]), min(groups[i])))
    loads = [0] * shards
    out = [0] * len(groups)
    for i in order:
        s = min(range(shards), key=lambda b: (loads[b], b))
        out[i] = s
        loads[s] += len(groups[i])
    return out


def _tree_edge_shards_subtree(tree: TreeNetwork, shards: int) -> dict:
    """``edge_key -> shard`` by balancer cuts + bin packing."""
    groups = _subtree_vertex_groups(tree, shards)
    shard_of_group = _pack_groups(groups, shards)
    vertex_shard = [0] * tree.n
    for gi, grp in enumerate(groups):
        for v in grp:
            vertex_shard[v] = shard_of_group[gi]
    out = {}
    for ek in tree.iter_edges():
        a, b = ek
        sa, sb = vertex_shard[a], vertex_shard[b]
        # Cut edges (endpoints in different shards) are owned by the
        # lower-numbered side; any demand using one necessarily also has
        # interior edges on at least one side, or is a single-edge path
        # that is then genuinely local to the owner.
        out[ek] = sa if sa == sb else min(sa, sb)
    return out


def _tree_edge_shards_layer(tree: TreeNetwork, shards: int) -> dict:
    """``edge_key -> shard`` by ideal-decomposition depth bands.

    Every ``T``-edge has one endpoint that is an ``H``-ancestor of the
    other (the LCA property), so the deeper endpoint's depth bands the
    edges; bands are chunked contiguously with balanced edge counts.
    """
    td = ideal_decomposition(tree)
    by_band: dict[int, list] = {}
    for ek in sorted(tree.iter_edges()):
        a, b = ek
        by_band.setdefault(max(td.depth[a], td.depth[b]), []).append(ek)
    bands = sorted(by_band)
    total = sum(len(by_band[b]) for b in bands)
    out = {}
    shard = 0
    filled = 0
    for i, band in enumerate(bands):
        for ek in by_band[band]:
            out[ek] = shard
        filled += len(by_band[band])
        remaining_bands = len(bands) - i - 1
        # Close the chunk once it reaches its fair share, as long as the
        # remaining bands can still populate the remaining shards.
        if (shard < shards - 1 and remaining_bands >= shards - shard - 1
                and filled * shards >= total * (shard + 1)):
            shard += 1
    return out


def _line_slot_shards(n_slots: int, shards: int) -> dict:
    """``timeslot -> shard``: contiguous equal blocks of the timeline."""
    return {t: min(t * shards // n_slots, shards - 1)
            for t in range(n_slots)}


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------


@dataclass
class ShardPlan:
    """An edge partition plus the demand routing it induces.

    Attributes
    ----------
    problem:
        The full problem the plan partitions.
    n_shards:
        Number of shards (bins); some may own no demands.
    by:
        The strategy that produced the plan (``subtree`` / ``layer``).
    edge_shard:
        ``global edge -> owning shard`` over every edge of every network.
    demand_shards:
        ``demand_shards[d]`` — sorted tuple of the shards demand ``d``'s
        instance routes touch (length 1 = local, >1 = boundary).
    shard_demands:
        Per shard, the *local* demand ids in ascending order (these
        become the shard subproblem's demands ``0..k-1`` in order).
    boundary_demands:
        Demand ids crossing a cut, ascending.
    """

    problem: TreeProblem | LineProblem
    n_shards: int
    by: str
    edge_shard: dict[GlobalEdge, int]
    demand_shards: list[tuple[int, ...]]
    shard_demands: list[list[int]]
    boundary_demands: list[int]
    _subproblems: dict = field(default_factory=dict, repr=False)
    _instance_maps: dict = field(default_factory=dict, repr=False)
    _global_lookup: dict | None = field(default=None, repr=False)

    # -- classification ------------------------------------------------

    def shards_of(self, demand_id: int) -> tuple[int, ...]:
        """The shards demand ``demand_id``'s routes touch."""
        return self.demand_shards[demand_id]

    def is_boundary(self, demand_id: int) -> bool:
        """Whether the demand crosses a cut (needs the broker)."""
        return len(self.demand_shards[demand_id]) > 1

    def shard_of(self, demand_id: int) -> int:
        """The owning shard of a *local* demand.

        Raises
        ------
        ValueError
            If the demand is a boundary demand.
        """
        shards = self.demand_shards[demand_id]
        if len(shards) != 1:
            raise ValueError(f"demand {demand_id} is a boundary demand")
        return shards[0]

    @property
    def boundary_count(self) -> int:
        """Number of cut-crossing demands — the first-order scale of the
        acceptance divergence vs the single-ledger replay (knock-on
        effects through local demands can exceed it; see the module
        docstring)."""
        return len(self.boundary_demands)

    @property
    def boundary_profit(self) -> float:
        """Total profit of cut-crossing demands — the first-order scale
        of the profit divergence vs the single-ledger replay."""
        return math.fsum(self.problem.demands[d].profit
                         for d in self.boundary_demands)

    # -- per-shard materialization ------------------------------------

    def subproblem(self, s: int):
        """Shard ``s``'s local demands as a standalone problem.

        Demand ids are densified in ascending global order; networks and
        access sets are shared with the full problem, so every local
        route is bit-identical to its global counterpart.
        """
        if s not in self._subproblems:
            self._subproblems[s] = subproblem_of(
                self.problem, self.shard_demands[s]
            )
        return self._subproblems[s]

    def subtrace(self, s: int, trace: EventTrace) -> EventTrace:
        """Shard ``s``'s event stream: local arrivals/departures (demand
        ids densified) plus every tick, in the original time order."""
        ids = self.shard_demands[s]
        local = {d: i for i, d in enumerate(ids)}
        events: list = []
        for ev in trace.events:
            if isinstance(ev, Tick):
                events.append(ev)
            elif ev.demand_id in local:
                cls = Arrival if isinstance(ev, Arrival) else Departure
                events.append(cls(ev.time, local[ev.demand_id]))
        meta = dict(trace.meta)
        meta.update({"shard": s, "shards": self.n_shards,
                     "shard_by": self.by})
        return EventTrace(problem=self.subproblem(s), events=events,
                          meta=meta)

    def boundary_events(self, trace: EventTrace) -> list:
        """The serialized stream: boundary arrivals/departures (global
        demand ids) plus every tick, in the original time order.  Empty
        when no demand crosses a cut."""
        if not self.boundary_demands:
            return []
        boundary = set(self.boundary_demands)
        return [ev for ev in trace.events
                if isinstance(ev, Tick) or ev.demand_id in boundary]

    # -- instance-id mapping -------------------------------------------

    def _lookup(self) -> dict:
        """``instance key -> global instance id`` over the full problem."""
        if self._global_lookup is None:
            tree = isinstance(self.problem, TreeProblem)
            lut = {}
            for inst in self.problem.instances():
                if tree:
                    lut[(inst.demand_id, inst.network_id)] = inst.instance_id
                else:
                    lut[(inst.demand_id, inst.network_id, inst.start,
                         inst.end)] = inst.instance_id
            self._global_lookup = lut
        return self._global_lookup

    def instance_map(self, s: int) -> list[int]:
        """``local instance id -> global instance id`` for shard ``s``."""
        if s not in self._instance_maps:
            tree = isinstance(self.problem, TreeProblem)
            lut = self._lookup()
            ids = self.shard_demands[s]
            out = []
            for inst in self.subproblem(s).instances():
                g = ids[inst.demand_id]
                key = ((g, inst.network_id) if tree
                       else (g, inst.network_id, inst.start, inst.end))
                out.append(lut[key])
            self._instance_maps[s] = out
        return self._instance_maps[s]

    def global_instance_of(self, s: int, local_iid: int) -> int:
        """Global instance id of shard ``s``'s local instance."""
        return self.instance_map(s)[local_iid]

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe plan summary for reports and archived metrics."""
        edge_counts = [0] * self.n_shards
        for s in self.edge_shard.values():
            edge_counts[s] += 1
        return {
            "shards": self.n_shards,
            "by": self.by,
            "demands": self.problem.num_demands,
            "local_demands": [len(ids) for ids in self.shard_demands],
            "edges_per_shard": edge_counts,
            "boundary_demands": self.boundary_count,
            "boundary_fraction": (self.boundary_count
                                  / max(self.problem.num_demands, 1)),
            "boundary_profit": self.boundary_profit,
        }


class ShardPlanner:
    """Builds :class:`ShardPlan` objects for a strategy.

    Parameters
    ----------
    by:
        ``"subtree"`` (balancer cuts) or ``"layer"`` (decomposition
        depth bands); both degenerate to contiguous timeslot blocks on
        line problems.
    """

    def __init__(self, by: str = "subtree"):
        if by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {by!r}; want one of "
                f"{SHARD_STRATEGIES}"
            )
        self.by = by

    def plan(self, problem, shards: int) -> ShardPlan:
        """Partition ``problem`` into ``shards`` shards."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        edge_shard: dict[GlobalEdge, int] = {}
        if isinstance(problem, TreeProblem):
            for q, net in enumerate(problem.networks):
                part = (_tree_edge_shards_subtree(net, shards)
                        if self.by == "subtree"
                        else _tree_edge_shards_layer(net, shards))
                for ek, s in part.items():
                    edge_shard[(q, ek)] = s
        elif isinstance(problem, LineProblem):
            slots = _line_slot_shards(problem.n_slots, shards)
            for q in range(problem.num_networks):
                for t, s in slots.items():
                    edge_shard[(q, t)] = s
        else:
            raise TypeError(f"cannot shard {type(problem).__name__}")

        touched: list[set[int]] = [set() for _ in range(problem.num_demands)]
        for inst in problem.instances():
            sset = touched[inst.demand_id]
            for ge in problem.global_edges_of(inst):
                sset.add(edge_shard[ge])
        demand_shards = [tuple(sorted(s)) for s in touched]
        shard_demands: list[list[int]] = [[] for _ in range(shards)]
        boundary: list[int] = []
        for d, sset in enumerate(demand_shards):
            if len(sset) == 1:
                shard_demands[sset[0]].append(d)
            else:
                boundary.append(d)
        return ShardPlan(
            problem=problem,
            n_shards=shards,
            by=self.by,
            edge_shard=edge_shard,
            demand_shards=demand_shards,
            shard_demands=shard_demands,
            boundary_demands=boundary,
        )
