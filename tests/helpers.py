"""Assertion helpers shared across test modules."""

from __future__ import annotations


def assert_bound(profit: float, opt: float, bound: float, label: str = "") -> None:
    """Assert the approximation guarantee ``profit ≥ opt / bound``."""
    assert profit >= opt / bound - 1e-9, (
        f"{label}: profit {profit} < OPT {opt} / bound {bound}"
    )
