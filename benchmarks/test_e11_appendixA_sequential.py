"""E11 (Appendix A): the sequential primal-dual algorithm.

Shape claims: λ = 1 exactly; ratio ≤ 3 multi-tree / ≤ 2 single-tree; and
its *round* cost is linear in the raised-instance count — the contrast
with the distributed algorithm's polylogarithmic rounds (the whole point
of Section 5), regenerated side by side.
"""

from __future__ import annotations

from repro import (
    random_tree_problem,
    solve_optimal,
    solve_sequential_tree,
    solve_tree_unit,
)
from repro.core.solution import verify_tree_solution

from common import emit, geomean


def run_experiment():
    rows = []
    seq_ratios, single_ratios, lambdas = [], [], []
    contrast = []
    for n, m, r in [(16, 12, 1), (16, 12, 3), (32, 32, 2), (64, 96, 1),
                    (128, 256, 1)]:
        for seed in range(2):
            p = random_tree_problem(n=n, m=m, r=r, seed=seed)
            seq = solve_sequential_tree(p)
            verify_tree_solution(p, seq, unit_height=True)
            dist = solve_tree_unit(p, epsilon=0.2, seed=seed)
            opt = solve_optimal(p)
            ratio = opt.profit / max(seq.profit, 1e-12)
            (single_ratios if r == 1 else seq_ratios).append(ratio)
            lambdas.append(seq.stats["realized_lambda"])
            contrast.append((m * r, seq.stats["steps"], dist.stats["steps"]))
            rows.append([f"n={n} m={m} r={r} s={seed}", ratio,
                         seq.stats["steps"], dist.stats["steps"],
                         f"{seq.profit:.1f}", f"{dist.profit:.1f}"])
    rows.append(["geo ratio multi-tree", geomean(seq_ratios), "-", "-", "-", "-"])
    rows.append(["geo ratio single-tree", geomean(single_ratios), "-", "-", "-",
                 "-"])
    emit(
        "E11",
        "Appendix A sequential (3-approx; 2-approx single tree) vs distributed",
        ["workload", "OPT/seq", "seq steps", "dist steps", "seq profit",
         "dist profit"],
        rows,
        notes=(
            "Paper: sequential λ=1, ∆=2 ⇒ 3-approx (2 for one tree), but "
            "round cost up to n; the distributed algorithm trades a "
            "(7+ε) ratio for polylog rounds."
        ),
    )
    return seq_ratios, single_ratios, lambdas, contrast


def test_appendixA_sequential(benchmark):
    seq_ratios, single_ratios, lambdas, contrast = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    assert all(r <= 3.0 + 1e-6 for r in seq_ratios)
    assert all(r <= 2.0 + 1e-6 for r in single_ratios)
    assert all(lam >= 1.0 - 1e-9 for lam in lambdas)
    # On the largest workload the sequential step count exceeds the
    # distributed one — the scalability gap the paper addresses.
    big = [c for c in contrast if c[0] >= 256]
    assert all(seq_steps > dist_steps for _, seq_steps, dist_steps in big)
