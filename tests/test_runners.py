"""Tests for the batch runner subsystem (jobs, caching, pooling)."""

from __future__ import annotations

import json

import pytest

from repro import BatchRunner, Job, random_tree_problem, save_problem
from repro.algorithms import registry
from repro.io import problem_to_dict
from repro.runners.batch import RunResult


@pytest.fixture
def tree_doc():
    return problem_to_dict(random_tree_problem(n=12, m=8, r=2, seed=7))


@pytest.fixture
def tree_path(tmp_path):
    path = tmp_path / "tree.json"
    save_problem(random_tree_problem(n=12, m=8, r=2, seed=7), str(path))
    return str(path)


class TestJob:
    def test_document_from_path_and_dict(self, tree_path, tree_doc):
        # Path jobs load the JSON form (tuples become lists); the content
        # must round-trip to the same problem document.
        loaded = Job(tree_path, "greedy").document()
        assert loaded == json.loads(json.dumps(tree_doc))
        assert Job(tree_doc, "greedy").document() is tree_doc

    def test_cache_key_stable_and_discriminating(self, tree_doc):
        a = Job(tree_doc, "tree-unit", params={"epsilon": 0.1}, seed=0)
        b = Job(tree_doc, "tree-unit", params={"epsilon": 0.1}, seed=0)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != Job(tree_doc, "tree-unit",
                                    params={"epsilon": 0.2}, seed=0).cache_key()
        assert a.cache_key() != Job(tree_doc, "tree-unit",
                                    params={"epsilon": 0.1}, seed=1).cache_key()
        assert a.cache_key() != Job(tree_doc, "sequential").cache_key()

    def test_label_defaults(self, tree_path, tree_doc):
        assert Job(tree_path, "greedy").display_label() == "tree"
        assert Job(tree_doc, "greedy").display_label() == "<inline>"
        assert Job(tree_doc, "greedy", label="x").display_label() == "x"


class TestBatchRunner:
    def test_inline_matches_direct_solve(self, tree_doc):
        jobs = [Job(tree_doc, "tree-unit", params={"epsilon": 0.2}, seed=3),
                Job(tree_doc, "greedy")]
        results = BatchRunner(processes=1).run(jobs)
        assert [r.error for r in results] == [None, None]
        p = random_tree_problem(n=12, m=8, r=2, seed=7)
        direct = registry.solve("tree-unit", p, epsilon=0.2, seed=3)
        assert results[0].profit == direct.profit
        assert results[0].size == direct.size
        assert results[0].solver == "tree-unit"

    def test_parallel_matches_inline(self, tree_doc):
        jobs = [Job(tree_doc, "tree-unit", params={"epsilon": 0.2}, seed=s)
                for s in range(4)]
        inline = BatchRunner(processes=1).run(jobs)
        pooled = BatchRunner(processes=2).run(jobs)
        assert [r.profit for r in inline] == [r.profit for r in pooled]

    def test_cache_roundtrip(self, tree_doc, tmp_path):
        cache = str(tmp_path / "cache")
        runner = BatchRunner(processes=1, cache_dir=cache)
        jobs = [Job(tree_doc, "tree-unit", params={"epsilon": 0.2}, seed=0)]
        first = runner.run(jobs)
        assert not first[0].cache_hit
        second = runner.run(jobs)
        assert second[0].cache_hit
        assert second[0].profit == first[0].profit
        # the cache file is valid standalone JSON
        doc = json.load(open(runner._cache_path(jobs[0].cache_key())))
        assert doc["profit"] == first[0].profit

    def test_errors_captured_not_raised(self, tree_doc):
        results = BatchRunner(processes=1).run(
            [Job(tree_doc, "no-such-solver")]
        )
        assert results[0].error is not None
        assert "no-such-solver" in results[0].error
        # errors are not cached
        assert results[0].cache_hit is False

    def test_family_mismatch_becomes_error(self, tree_doc):
        results = BatchRunner(processes=1).run([Job(tree_doc, "line-unit")])
        assert results[0].error is not None

    def test_run_grid_order(self, tree_doc):
        runner = BatchRunner(processes=1)
        results = runner.run_grid([tree_doc], ["greedy", "sequential"],
                                  seeds=[0, 1])
        assert [(r.solver, (r.params or {}).get("seed"))
                for r in results] == [
            ("greedy", 0), ("greedy", 1),
            ("sequential", 0), ("sequential", 1),
        ]

    def test_results_json_roundtrip(self, tree_doc):
        results = BatchRunner(processes=1).run([Job(tree_doc, "greedy")])
        doc = results[0].to_dict()
        json.dumps(doc)  # must be serialisable
        back = RunResult.from_dict(doc)
        assert back.profit == results[0].profit
