"""``repro top`` — the live optimality dashboard, and ``repro trace``.

A tiny newline-delimited-JSON client polls a running service's
``{"op": "stats"}`` endpoint and renders a refreshing terminal view:
event throughput (from stream-position deltas between polls),
admit/reject/evict rates, journal commit lag, the async front door's
connection counters, and the headline number the ROADMAP asks for —
realized profit against the policy's live LP-dual upper bound
``OPT≤(dual)``, i.e. how far the online run provably sits from
offline optimal *right now*.

Rendering is split from polling: :func:`render_dashboard` is a pure
function of two stats snapshots and the wall interval, so tests drive
it without a terminal, and :func:`run_top` is the loop the CLI runs
(ANSI home+clear when writing to a TTY, plain blocks otherwise).
"""

from __future__ import annotations

import json
import socket
import sys
import time

__all__ = ["fetch_stats", "render_dashboard", "request_once", "run_top"]


def request_once(host: str, port: int, req: dict, *,
                 timeout: float = 10.0) -> dict:
    """One request/response round trip against a line server."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(req) + "\n").encode("utf-8"))
        with sock.makefile("r", encoding="utf-8") as rd:
            line = rd.readline()
    if not line:
        raise ConnectionError(f"no response from {host}:{port}")
    return json.loads(line)


def fetch_stats(host: str, port: int, *, timeout: float = 10.0) -> dict:
    """The ``stats`` payload of a running service."""
    resp = request_once(host, port, {"op": "stats"}, timeout=timeout)
    if not resp.get("ok"):
        raise RuntimeError(f"stats request failed: {resp.get('error')}")
    return resp["stats"]


def _rate(cur: dict, prev: dict | None, key: str, dt: float) -> float:
    if prev is None or dt <= 0:
        return 0.0
    return ((cur.get(key) or 0) - (prev.get(key) or 0)) / dt


def _fmt(value, spec: str = "", none: str = "-") -> str:
    if value is None:
        return none
    return format(value, spec)


def render_dashboard(cur: dict, prev: dict | None, dt: float) -> str:
    """One dashboard frame from two consecutive stats snapshots."""
    arrivals = cur.get("arrivals") or 0
    accepted = cur.get("accepted") or 0
    rejected = arrivals - accepted
    profit = cur.get("realized_profit")
    dual = cur.get("dual_upper_bound")
    gap = None
    if profit is not None and dual:
        gap = (dual - profit) / dual
    server = cur.get("server") or {}
    lines = [
        "repro top — live admission dashboard",
        "",
        f"  position        {cur.get('position', 0):>12}"
        f"    events/s   {_rate(cur, prev, 'position', dt):>10.1f}",
        f"  arrivals        {arrivals:>12}"
        f"    admits/s   {_rate(cur, prev, 'accepted', dt):>10.1f}",
        f"  accepted        {accepted:>12}"
        f"    rejects/s  {_rate(cur, prev, 'arrivals', dt) - _rate(cur, prev, 'accepted', dt):>10.1f}",
        f"  rejected        {rejected:>12}"
        f"    evicts/s   {_rate(cur, prev, 'evictions', dt):>10.1f}",
        f"  evictions       {cur.get('evictions', 0):>12}"
        f"    admitted   {cur.get('num_admitted', 0):>10}",
        f"  utilization     {_fmt(cur.get('utilization'), '12.4f')}",
        "",
        f"  realized profit {_fmt(profit, '12.3f')}",
        f"  OPT<=(dual)     {_fmt(dual, '12.3f')}",
        f"  optimality gap  {_fmt(None if gap is None else 100 * gap, '11.2f')}%"
        f"    policy     {cur.get('policy', '-'):>14}",
        "",
        f"  commit lag      {_fmt(cur.get('commit_lag'), '>12')}"
        f"    journaled  {str(bool(cur.get('journaled'))):>10}",
        f"  clients         {_fmt(server.get('clients'), '>12')}"
        f"    backpress. {_fmt(server.get('backpressured_clients'), '>10')}",
        f"  requests        {_fmt(server.get('requests_total'), '>12')}"
        f"    queue      {_fmt(server.get('dispatch_queue_depth'), '>10')}",
    ]
    shards = cur.get("shards")
    if shards:
        lines.append("")
        for row in shards:
            lines.append(
                f"  shard {row['shard']:>3}  admitted {row['admitted']:>8}"
                f"  utilization {row['utilization']:.4f}"
            )
    return "\n".join(lines)


def run_top(host: str, port: int, *, interval: float = 1.0,
            iterations: int | None = None, out=None) -> int:
    """Poll stats and redraw until interrupted (or ``iterations``).

    Returns the number of frames rendered.  ``out`` defaults to stdout;
    ANSI clear-and-home is only emitted when ``out`` is a terminal.
    """
    out = sys.stdout if out is None else out
    is_tty = bool(getattr(out, "isatty", lambda: False)())
    prev = None
    prev_t = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            cur = fetch_stats(host, port)
            now = time.monotonic()
            dt = (now - prev_t) if prev_t is not None else 0.0
            frame = render_dashboard(cur, prev, dt)
            if is_tty:
                out.write("\x1b[H\x1b[2J")
            out.write(frame + "\n")
            out.flush()
            prev, prev_t = cur, now
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames
