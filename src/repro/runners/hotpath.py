"""Hot-path micro-benchmark: vectorized core vs the scalar reference.

Times the two operations the engine spends its life in —

* **conflict queries**: building the conflict index and computing the
  conflict adjacency of a population (the per-step MIS input), plus the
  phase-2 "which candidates clash with the active set" probe;
* **dual raises**: the unsatisfied-constraint filter (`lhs` over a whole
  group) and raising an entire MIS to tightness;

on a ~5k-demand line instance and a deep-tree instance, against the
retained scalar reference implementation (``tests/helpers.py``).  Results
are written as JSON (``BENCH_hotpath.json``) so later changes can track
the perf trajectory.

The scalar reference lives in the test tree on purpose — it is frozen.
When it is not importable (e.g. an installed package without the repo
checkout) the benchmark still runs and reports vectorized timings only.
"""

from __future__ import annotations

import json
import time
from typing import Callable

import numpy as np

__all__ = ["build_line_case", "build_tree_case", "run_hotpath_bench"]


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of_fresh(setup: Callable[[], object], work: Callable[[object], object],
                   repeats: int = 3) -> float:
    """Best-of timing of ``work`` on a fresh ``setup()`` state per repeat.

    Keeps one-time construction out of the timed region — the engine
    builds its dual store once but runs the filter/raise cycle thousands
    of times.
    """
    best = float("inf")
    for _ in range(repeats):
        state = setup()
        t0 = time.perf_counter()
        work(state)
        best = min(best, time.perf_counter() - t0)
    return best


def build_line_case(m: int = 5000, seed: int = 0):
    """A ~``m``-demand single-resource line instance, one placement each."""
    from ..core.instance import LineProblem
    from ..core.demand import WindowDemand
    from ..network.line import LineNetwork

    rng = np.random.default_rng(seed)
    n_slots = max(4 * m, 256)
    demands = []
    for i in range(m):
        length = int(rng.integers(16, 64))
        start = int(rng.integers(0, n_slots - length))
        demands.append(
            WindowDemand(
                demand_id=i,
                release=start,
                deadline=start + length - 1,
                proc_time=length,
                profit=float(rng.uniform(1.0, 10.0)),
            )
        )
    problem = LineProblem(
        n_slots=n_slots,
        resources=[LineNetwork(n_slots, network_id=0)],
        demands=demands,
    )
    return problem, None


def build_tree_case(m: int = 1200, n: int = 2500, seed: int = 0):
    """Random demands on one deep path-shaped tree (long routes)."""
    from ..core.demand import Demand
    from ..core.instance import TreeProblem
    from ..workloads import make_tree

    rng = np.random.default_rng(seed)
    net = make_tree(n, "path", seed=seed)
    demands = []
    for i in range(m):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n - 1))
        if v >= u:
            v += 1
        demands.append(Demand(i, u, v, profit=float(rng.uniform(1.0, 10.0))))
    problem = TreeProblem(n=n, networks=[net], demands=demands)
    return problem, {0: net}


def _bench_case(problem, trees, scalar, pop_cap: int, seed: int = 0) -> dict:
    """Time conflict queries + dual raises, vectorized vs scalar."""
    from ..core.conflict import ConflictIndex
    from ..core.duals import DualState
    from ..distributed.mis import greedy_mis

    instances = problem.instances()
    edges_of = [frozenset(problem.global_edges_of(d)) for d in instances]
    n = len(instances)
    rng = np.random.default_rng(seed)
    pop = sorted(
        rng.choice(n, size=min(pop_cap, n), replace=False).tolist()
    )
    out: dict = {"instances": n, "population": len(pop)}

    # ---- conflict index: construction + population adjacency ----------
    out["vec_build_s"] = _best_of(
        lambda: ConflictIndex(instances, edges_of, trees=trees), 1
    )
    ci = ConflictIndex(instances, edges_of, trees=trees)
    out["vec_adjacency_s"] = _best_of(lambda: ci.adjacency(pop))
    adj = ci.adjacency(pop)

    # ---- phase-2 probe: candidates vs a grown active set --------------
    mis, _ = greedy_mis(adj)
    mis_sorted = sorted(mis)
    half = mis_sorted[: len(mis_sorted) // 2]
    rest = mis_sorted[len(mis_sorted) // 2:]

    def vec_active_probe():
        act = ci.active_set()
        act.add_all(half)
        return act.blocked_mask(np.asarray(pop, dtype=np.int64))

    out["vec_active_probe_s"] = _best_of(vec_active_probe)

    # ---- dual raises: unsat filter + raising a whole MIS --------------
    profits = [d.profit for d in instances]
    heights = [d.height for d in instances]
    demand_of = [d.demand_id for d in instances]
    crit = {
        i: tuple(sorted(edges_of[i]))[:3] for i in range(n)
    }

    def vec_duals_setup():
        ds = DualState(profits, heights, demand_of, edges_of, log_raises=False)
        ds.set_critical(crit)
        return ds

    pop_arr = np.asarray(pop, dtype=np.int64)
    mis_arr = np.asarray(mis_sorted, dtype=np.int64)
    rest_arr = np.asarray(rest, dtype=np.int64)

    def vec_duals_work(ds):
        plan = ds.make_plan(pop_arr)
        for _ in range(10):
            ds.unsatisfied_mask(pop_arr, 0.9, plan=plan)
        ds.raise_unit_batch(mis_arr)
        for _ in range(10):
            ds.unsatisfied_mask(pop_arr, 0.95, plan=plan)
        ds.raise_unit_batch(rest_arr)

    out["vec_duals_s"] = _best_of_fresh(vec_duals_setup, vec_duals_work)
    out["vectorized_total_s"] = (
        out["vec_adjacency_s"] + out["vec_active_probe_s"] + out["vec_duals_s"]
    )

    if scalar is None:
        return out

    # ---- same workload through the frozen scalar reference ------------
    out["scalar_build_s"] = _best_of(
        lambda: scalar.ScalarConflictIndex(instances, edges_of), 1
    )
    sci = scalar.ScalarConflictIndex(instances, edges_of)
    out["scalar_adjacency_s"] = _best_of(lambda: sci.subgraph(pop))

    def scalar_active_probe():
        used_edges: set = set()
        used_demands: set = set()
        for iid in half:
            used_edges |= edges_of[iid]
            used_demands.add(instances[iid].demand_id)
        return [
            instances[iid].demand_id in used_demands
            or bool(edges_of[iid] & used_edges)
            for iid in pop
        ]

    out["scalar_active_probe_s"] = _best_of(scalar_active_probe)

    def scalar_duals_setup():
        return scalar.ScalarDualState(profits, heights, demand_of, edges_of)

    def scalar_duals_work(ds):
        for _ in range(10):
            for iid in pop:
                ds.lhs(iid)
        for iid in mis_sorted:
            ds.raise_unit(iid, crit[iid])
        for _ in range(10):
            for iid in pop:
                ds.lhs(iid)
        for iid in rest:
            ds.raise_unit(iid, crit[iid])

    out["scalar_duals_s"] = _best_of_fresh(scalar_duals_setup, scalar_duals_work)
    out["scalar_total_s"] = (
        out["scalar_adjacency_s"]
        + out["scalar_active_probe_s"]
        + out["scalar_duals_s"]
    )
    out["speedup"] = out["scalar_total_s"] / max(out["vectorized_total_s"], 1e-12)
    out["speedup_conflict"] = (
        (out["scalar_adjacency_s"] + out["scalar_active_probe_s"])
        / max(out["vec_adjacency_s"] + out["vec_active_probe_s"], 1e-12)
    )
    out["speedup_duals"] = out["scalar_duals_s"] / max(out["vec_duals_s"], 1e-12)
    return out


def _load_scalar_reference():
    """Import the frozen scalar reference from the repo's test tree."""
    try:
        from tests import helpers  # repo checkout, cwd = repo root
        return helpers
    except ImportError:
        return None


def run_hotpath_bench(
    smoke: bool = False,
    out_path: str | None = None,
    scalar=None,
) -> dict:
    """Run both cases; returns (and optionally writes) the report dict.

    ``smoke=True`` shrinks the instances so CI can execute the benchmark
    in seconds; the speedup numbers are then indicative only.
    """
    if scalar is None:
        scalar = _load_scalar_reference()
    if smoke:
        line_m, tree_m, tree_n, pop_cap = 400, 200, 400, 300
    else:
        line_m, tree_m, tree_n, pop_cap = 5000, 1200, 2500, 1500

    report: dict = {"smoke": smoke, "scalar_reference": scalar is not None,
                    "cases": {}}
    problem, trees = build_line_case(m=line_m)
    report["cases"]["line"] = _bench_case(problem, trees, scalar, pop_cap)
    problem, trees = build_tree_case(m=tree_m, n=tree_n)
    report["cases"]["tree"] = _bench_case(problem, trees, scalar, pop_cap)

    if scalar is not None:
        total_scalar = sum(c["scalar_total_s"] for c in report["cases"].values())
        total_vec = sum(
            c["vectorized_total_s"] for c in report["cases"].values()
        )
        report["combined_speedup"] = total_scalar / max(total_vec, 1e-12)

    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
    return report
