"""Event-loop safety for the async front door.

``AsyncLineServer`` is one single-threaded ``selectors`` loop: any
call that can block — a sleep, a ``recv``/``accept`` on a socket the
selector did not just report ready (or that is not guarded for the
spurious-wakeup case), an ``fsync`` inside per-request dispatch —
stalls *every* connected client at once.  The contract in code:

* sockets are non-blocking; ``recv``/``accept`` sit inside a ``try``
  that catches ``BlockingIOError`` (or ``OSError``, its parent), so a
  spurious readiness report cannot hang the loop;
* ``time.sleep`` / ``settimeout`` / ``setblocking(True)`` never appear;
* ``sendall`` (a loop-until-sent blocking call) and ``fsync`` stay off
  the dispatch path — writes go through the buffered ``_emit``/
  ``_flush`` machinery and durability through the journal's group
  commit at drain time.
"""

from __future__ import annotations

import ast

from ..base import Fixture, ParsedFile, Rule, call_name, register
from ..findings import Finding

__all__ = ["EventLoopRule"]

_BLOCKING_SOCKET_METHODS = {"accept", "recv", "recvfrom", "recv_into"}

#: Per-request dispatch functions where an fsync would serialize every
#: client behind one disk flush.
_DISPATCH_FUNCS = {"_serve_line", "_dispatch_round_robin", "_ingest",
                   "_read", "_flush", "_emit"}

_GUARD_NAMES = {"BlockingIOError", "OSError", "InterruptedError",
                "ConnectionError", "Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler):
    t = handler.type
    if t is None:
        return {"BaseException"}
    exprs = t.elts if isinstance(t, ast.Tuple) else [t]
    names = set()
    for e in exprs:
        if isinstance(e, ast.Name):
            names.add(e.id)
        elif isinstance(e, ast.Attribute):
            names.add(e.attr)
    return names


def _collect_guarded(tree: ast.Module):
    """ids of nodes lexically inside a try guarded for BlockingIOError."""
    guarded: set = set()

    def visit(node: ast.AST, covered: bool) -> None:
        if isinstance(node, ast.Try):
            body_covered = covered or any(
                _handler_names(h) & _GUARD_NAMES for h in node.handlers)
            for child in node.body:
                visit(child, body_covered)
            for part in (node.handlers, node.orelse, node.finalbody):
                for child in part:
                    visit(child, covered)
            return
        if covered:
            guarded.add(id(node))
        for child in ast.iter_child_nodes(node):
            visit(child, covered)

    visit(tree, False)
    return guarded


@register
class EventLoopRule(Rule):
    id = "LOOP001"
    name = "event-loop-blocking-call"
    rationale = (
        "The async server is one thread multiplexing every client: a "
        "single blocking call — time.sleep, a recv/accept that can "
        "hang on a spurious readiness report, sendall's loop-until-"
        "sent, an fsync inside per-request dispatch — stalls the whole "
        "front door.  Sockets stay non-blocking, recv/accept sit under "
        "a BlockingIOError guard, writes go through the buffered flush "
        "path, and durability happens at group-commit drain time."
    )
    scope = "file"
    default_path = "service/async_server.py"
    fixtures = [
        Fixture(
            bad=(
                "def _read(self, conn):\n"
                "    chunk = conn.sock.recv(65536)\n"
                "    self._ingest(conn, chunk)\n"
            ),
            good=(
                "def _read(self, conn):\n"
                "    try:\n"
                "        chunk = conn.sock.recv(65536)\n"
                "    except BlockingIOError:\n"
                "        return\n"
                "    self._ingest(conn, chunk)\n"
            ),
            note="a selector readiness report may be spurious; only the "
                 "BlockingIOError guard keeps the loop unstallable",
        ),
        Fixture(
            bad=(
                "import time\n"
                "def _dispatch_round_robin(self):\n"
                "    time.sleep(0.01)\n"
            ),
            good=(
                "def _dispatch_round_robin(self):\n"
                "    pass  # backpressure is selector interest, not sleep\n"
            ),
            note="sleeping in the loop freezes every connected client",
        ),
    ]

    def check_file(self, parsed: ParsedFile):
        if not str(parsed.path).endswith("async_server.py"):
            return
        guarded = _collect_guarded(parsed.tree)
        func_of: dict = {}
        for fn in ast.walk(parsed.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(fn):
                    func_of.setdefault(id(sub), fn.name)
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            attr = (node.func.attr
                    if isinstance(node.func, ast.Attribute) else None)
            if name == "time.sleep":
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message="time.sleep stalls the event loop for every "
                            "connected client",
                )
            elif attr == "settimeout":
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message="settimeout turns a socket blocking-with-"
                            "timeout; the loop requires non-blocking "
                            "sockets under the selector",
                )
            elif attr == "setblocking" and node.args and not (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in (False, 0)):
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message="setblocking(True) re-blocks a socket the "
                            "selector multiplexes",
                )
            elif attr in _BLOCKING_SOCKET_METHODS and id(node) not in guarded:
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message=(f".{attr}() without a BlockingIOError guard "
                             "can hang the loop on a spurious readiness "
                             "report"),
                )
            elif attr == "sendall":
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message="sendall loops until the kernel takes every "
                            "byte; use the buffered _emit/_flush path",
                )
            elif (attr == "fsync" or name == "os.fsync") and \
                    func_of.get(id(node)) in _DISPATCH_FUNCS:
                yield Finding(
                    path=str(parsed.path), line=node.lineno,
                    col=node.col_offset, rule=self.id,
                    message="fsync on the dispatch path serializes every "
                            "client behind one disk flush; durability "
                            "belongs to the group-commit drain",
                )
