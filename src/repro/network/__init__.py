"""Graph substrates: tree-networks and line-networks.

Workload generators live in :mod:`repro.workloads` (they depend on the
problem model, which depends on these primitives).
"""

from .line import LineNetwork, interval_to_endpoints, line_as_tree
from .tree import EdgeKey, TreeNetwork, edge_key

__all__ = [
    "EdgeKey",
    "LineNetwork",
    "TreeNetwork",
    "edge_key",
    "interval_to_endpoints",
    "line_as_tree",
]
