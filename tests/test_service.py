"""Tests for the admission service: journal, warm restart, request API.

The load-bearing guarantee is the warm-restart property the CI smoke
job also exercises end to end: killing a journaled service after *any*
event prefix and resuming from the journal finishes the trace with a
result identical (timing aside) to an uninterrupted replay — for every
registered policy.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.io import (
    JournalWriter,
    event_to_dict,
    read_journal,
    save_trace,
)
from repro.online import (
    POLICY_NAMES,
    generate_trace,
    make_policy,
    poisson_trace,
    replay,
)
from repro.online.metrics import deterministic_metrics
from repro.service import AdmissionService, serve_lines

#: Per-policy constructor params for the restart property (small flush
#: cadence so batch-resolve actually batches inside the short trace).
POLICY_PARAMS = {
    "greedy-threshold": {},
    "dual-gated": {},
    "batch-resolve": {"solver": "greedy", "resolve_every": 8},
    "preempt-density": {"factor": 1.2},
    "preempt-dual-gated": {"penalty": 0.1},
}


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace("line", events=60, process="bursty", seed=11,
                          departure_prob=0.4, tick_every=6.0)


def _drain(service, events):
    for ev in events:
        service.submit_event(ev)


class TestJournalRoundTrip:
    def test_header_and_events_round_trip(self, small_trace, tmp_path):
        path = str(tmp_path / "j.log")
        header = {"policy": "dual-gated", "params": {"eta": 1.5},
                  "shards": 1, "shard_by": "subtree",
                  "trace": __import__("repro.io", fromlist=["trace_to_dict"]
                                      ).trace_to_dict(small_trace)}
        with JournalWriter(path, header) as jw:
            for ev in small_trace.events:
                jw.append(ev)
        back_header, events, good = read_journal(path)
        assert back_header["policy"] == "dual-gated"
        assert back_header["params"] == {"eta": 1.5}
        assert events == small_trace.events  # frozen dataclasses: exact
        assert good == os.path.getsize(path)

    def test_torn_final_line_dropped(self, small_trace, tmp_path):
        path = str(tmp_path / "j.log")
        svc = AdmissionService(small_trace, "greedy-threshold",
                               journal_path=path)
        _drain(svc, small_trace.events[:10])
        svc.journal.close()
        with open(path, "a") as fh:
            fh.write('{"type": "arrival", "time": 9')  # torn by a kill
        header, events, good = read_journal(path)
        assert len(events) == 10
        # Resuming truncates the torn tail and appends cleanly.
        resumed = AdmissionService.resume(path)
        assert resumed.position == 10
        resumed.submit_event(small_trace.events[10])
        header2, events2, _ = read_journal(path)
        assert len(events2) == 11

    def test_newline_less_tail_treated_as_torn(self, small_trace,
                                               tmp_path):
        """A kill can land between a record's bytes and its newline;
        the parseable-but-unterminated tail must be dropped so that
        good_bytes and the recovered events describe the same prefix
        (a glued '}{' line would silently lose two events on the
        *second* restart otherwise)."""
        path = str(tmp_path / "j.log")
        svc = AdmissionService(small_trace, "greedy-threshold",
                               journal_path=path)
        _drain(svc, small_trace.events[:8])
        svc.journal.close()
        with open(path, "r+") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 1)  # shave exactly the final '\n'
        header, events, good = read_journal(path)
        assert len(events) == 7  # the unterminated record is torn
        resumed = AdmissionService.resume(path)
        assert resumed.position == 7
        resumed.submit_event(small_trace.events[7])
        # The journal stayed line-clean: a further restart sees 8 events.
        _, events2, _ = read_journal(path)
        assert len(events2) == 8
        assert events2 == small_trace.events[:8]

    def test_mid_file_corruption_rejected(self, small_trace, tmp_path):
        path = str(tmp_path / "j.log")
        svc = AdmissionService(small_trace, "greedy-threshold",
                               journal_path=path)
        _drain(svc, small_trace.events[:5])
        svc.journal.close()
        lines = open(path).read().splitlines()
        lines[2] = '{"type": "arr'  # torn *before* later records
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal"):
            read_journal(path)

    def test_not_a_journal_rejected(self, small_trace, tmp_path):
        path = str(tmp_path / "notes.jsonl")
        with open(path, "w") as fh:
            fh.write('{"kind": "trace"}\n')
        with pytest.raises(ValueError, match="not an admission journal"):
            read_journal(path)
        # A multi-line JSON document (e.g. a saved trace) fails the
        # line-format check outright.
        trace_path = str(tmp_path / "trace.json")
        save_trace(small_trace, trace_path)
        with pytest.raises(ValueError, match="corrupt journal"):
            read_journal(trace_path)

    def test_fresh_writer_refuses_existing_file(self, small_trace, tmp_path):
        path = str(tmp_path / "j.log")
        AdmissionService(small_trace, "greedy-threshold",
                         journal_path=path).journal.close()
        with pytest.raises(ValueError, match="already exists"):
            JournalWriter(path, {"policy": "x"})


class TestWarmRestartEquivalence:
    """Kill at every event k + resume == uninterrupted, all policies."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_kill_at_every_event(self, small_trace, tmp_path, policy):
        params = POLICY_PARAMS[policy]
        full = replay(small_trace, make_policy(policy, **params))
        want_metrics = deterministic_metrics(full.metrics)
        for k in range(len(small_trace.events) + 1):
            path = str(tmp_path / f"{policy}-{k}.log")
            svc = AdmissionService(small_trace, policy, params,
                                   journal_path=path)
            _drain(svc, small_trace.events[:k])
            del svc  # the kill: no close(), journal flushed per record
            resumed = AdmissionService.resume(path)
            assert resumed.position == k
            result = resumed.run_remaining()
            assert deterministic_metrics(result.metrics) == want_metrics
            assert result.admission_log == full.admission_log
            assert result.eviction_log == full.eviction_log
            assert result.policy_stats == full.policy_stats

    def test_double_restart(self, small_trace, tmp_path):
        """Kill → resume → kill again → resume: journals compose."""
        full = replay(small_trace, make_policy("dual-gated"))
        path = str(tmp_path / "j.log")
        svc = AdmissionService(small_trace, "dual-gated",
                               journal_path=path)
        _drain(svc, small_trace.events[:15])
        del svc
        second = AdmissionService.resume(path)
        _drain(second, small_trace.events[15:35])
        del second
        third = AdmissionService.resume(path)
        assert third.position == 35
        result = third.run_remaining()
        assert deterministic_metrics(result.metrics) == \
            deterministic_metrics(full.metrics)


class TestRequestAPI:
    def test_admit_release_query_stats_close(self):
        tr = poisson_trace("line", events=40, seed=7, departure_prob=0.0)
        svc = AdmissionService(tr, "greedy-threshold")
        r = svc.handle({"op": "admit", "demand": 0, "time": 1.0})
        assert r["ok"] and r["decision"]["kind"] == "arrival"
        q = svc.handle({"op": "query", "demand": 0})
        assert q["ok"] and q["admitted"] == r["decision"]["accepted"]
        s = svc.handle({"op": "stats"})
        assert s["ok"] and s["stats"]["arrivals"] == 1
        assert s["stats"]["position"] == 1
        rel = svc.handle({"op": "release", "demand": 0, "time": 2.0})
        assert rel["ok"]
        snap = svc.handle({"op": "snapshot"})
        assert snap["ok"] and snap["solution"]["selected"] == []
        c = svc.handle({"op": "close"})
        assert c["ok"] and c["metrics"]["arrivals"] == 1
        json.dumps(c)

    def test_domain_errors_are_responses(self):
        tr = poisson_trace("line", events=40, seed=7, departure_prob=0.0)
        svc = AdmissionService(tr, "greedy-threshold")
        assert not svc.handle({"op": "warp"})["ok"]
        # Malformed submit payloads must come back as errors, never
        # crash the serve loop (regression: non-dict event records).
        assert not svc.handle({"op": "submit", "event": "x"})["ok"]
        assert not svc.handle({"op": "submit", "event": [1, 2]})["ok"]
        assert not svc.handle({"op": "submit"})["ok"]
        assert not svc.handle({"op": "admit"})["ok"]  # no demand field
        assert "unknown demand" in \
            svc.handle({"op": "admit", "demand": 10**6})["error"]
        svc.handle({"op": "admit", "demand": 3, "time": 1.0})
        assert "already arrived" in \
            svc.handle({"op": "admit", "demand": 3})["error"]
        assert "before arriving" in \
            svc.handle({"op": "release", "demand": 4})["error"]
        svc.handle({"op": "release", "demand": 3})
        assert "already departed" in \
            svc.handle({"op": "release", "demand": 3})["error"]
        # Errors never advanced the stream.
        assert svc.stats()["position"] == 2
        svc.handle({"op": "close"})
        assert "closed" in svc.handle({"op": "tick"})["error"]

    def test_serve_lines_transport(self, tmp_path):
        tr = poisson_trace("line", events=30, seed=9, departure_prob=0.0)
        svc = AdmissionService(tr, "greedy-threshold",
                               journal_path=str(tmp_path / "j.log"))
        lines = ["not json", json.dumps(["a", "list"])]
        lines += [json.dumps({"op": "submit", "event": event_to_dict(ev)})
                  for ev in tr.events]
        lines.append(json.dumps({"op": "close"}))
        out: list[dict] = []
        closed = serve_lines(svc, lines, out.append)
        assert closed is not None and closed["ok"]
        assert not out[0]["ok"] and "bad request JSON" in out[0]["error"]
        assert not out[1]["ok"]
        assert all(r["ok"] for r in out[2:])
        assert closed["metrics"]["events"] == len(tr.events)


class TestShardedBackend:
    @pytest.fixture(scope="class")
    def tree_trace(self):
        return generate_trace("tree", events=250, seed=5,
                              departure_prob=0.3,
                              workload={"n": 120,
                                        "boundary_fraction": 0.1,
                                        "parts": 2})

    @pytest.mark.parametrize("policy", ["greedy-threshold",
                                        "preempt-density"])
    def test_matches_unsharded_replay(self, tree_trace, policy):
        """The coordinator decides, so sharding the backend never
        changes a decision — the shard ledgers are mirrored views."""
        params = POLICY_PARAMS[policy]
        svc = AdmissionService(tree_trace, policy, params, shards=2)
        _drain(svc, tree_trace.events)
        result = svc.close()
        direct = replay(tree_trace, make_policy(policy, **params))
        assert deterministic_metrics(result.metrics) == \
            deterministic_metrics(direct.metrics)

    def test_shard_views_consistent(self, tree_trace):
        svc = AdmissionService(tree_trace, "greedy-threshold", shards=2)
        _drain(svc, tree_trace.events)
        stats = svc.stats()
        assert len(stats["shards"]) == 2
        mirrored = sum(row["admitted"] for row in stats["shards"])
        assert mirrored + stats["boundary_admitted"] == \
            stats["num_admitted"]
        svc.close()  # verifies coordinator + every shard ledger

    def test_sharded_warm_restart(self, tree_trace, tmp_path):
        path = str(tmp_path / "j.log")
        full = replay(tree_trace, make_policy("greedy-threshold"))
        svc = AdmissionService(tree_trace, "greedy-threshold",
                               journal_path=path, shards=2)
        _drain(svc, tree_trace.events[:100])
        del svc
        resumed = AdmissionService.resume(path)
        assert resumed.shards == 2  # backend shape travels in the header
        result = resumed.run_remaining()
        assert deterministic_metrics(result.metrics) == \
            deterministic_metrics(full.metrics)
