"""Tree-network substrate.

The paper (Section 2) defines the input as a vertex set ``V`` of ``n``
vertices together with ``r`` tree-networks, each a spanning tree over ``V``
(the tree-networks may define *different* trees).  A demand is a pair of
vertices; on a tree the connecting path is unique, so scheduling a demand on
a tree-network fixes its route.

:class:`TreeNetwork` provides exactly the primitives the algorithms need:

* unique-path extraction between any two vertices (via rooted parent
  pointers and LCA climbing — ``O(path length)`` per query after an
  ``O(n)`` preprocessing pass);
* LCA and three-point *median* queries (the median is the unique vertex
  common to the three pairwise paths; Section 4.3's junction node and the
  "bending point" of Section 4.4 are both medians);
* canonical undirected edge keys, so dual variables ``beta(e)`` and
  edge-capacity bookkeeping can be stored in plain dictionaries.

Vertices are integers ``0 .. n-1``.  An edge key is the tuple
``(min(u, v), max(u, v))``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["EdgeKey", "EulerTourIndex", "TreeNetwork", "edge_key"]

EdgeKey = tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical undirected key for the edge ``{u, v}``."""
    return (u, v) if u <= v else (v, u)


class TreeNetwork:
    """An undirected tree over vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Exactly ``n - 1`` undirected edges forming a spanning tree.
    network_id:
        Identifier of this tree-network within the problem instance
        (index into the instance's network list).

    Raises
    ------
    ValueError
        If the edge set is not a spanning tree on ``0 .. n-1``.
    """

    __slots__ = (
        "n",
        "network_id",
        "adj",
        "_parent",
        "_depth",
        "_order",
        "_edge_set",
        "_euler",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], network_id: int = 0):
        self.n = int(n)
        self.network_id = int(network_id)
        if self.n <= 0:
            raise ValueError("a tree-network needs at least one vertex")
        adj: list[list[int]] = [[] for _ in range(self.n)]
        edge_set: set[EdgeKey] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"edge ({u},{v}) out of vertex range 0..{self.n - 1}")
            if u == v:
                raise ValueError(f"self-loop at vertex {u}")
            k = edge_key(u, v)
            if k in edge_set:
                raise ValueError(f"duplicate edge {k}")
            edge_set.add(k)
            adj[u].append(v)
            adj[v].append(u)
        if len(edge_set) != self.n - 1:
            raise ValueError(
                f"a tree on {self.n} vertices needs {self.n - 1} edges, "
                f"got {len(edge_set)}"
            )
        self.adj = adj
        self._edge_set = edge_set
        # Root at 0 and record parent/depth plus a BFS order; connectivity
        # check falls out of the traversal covering all n vertices.
        parent = [-1] * self.n
        depth = [0] * self.n
        order = [0]
        seen = [False] * self.n
        seen[0] = True
        q = deque([0])
        while q:
            x = q.popleft()
            for y in adj[x]:
                if not seen[y]:
                    seen[y] = True
                    parent[y] = x
                    depth[y] = depth[x] + 1
                    order.append(y)
                    q.append(y)
        if len(order) != self.n:
            raise ValueError("edge set is not connected: not a spanning tree")
        self._parent = parent
        self._depth = depth
        self._order = order
        self._euler: EulerTourIndex | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def edges(self) -> frozenset[EdgeKey]:
        """The set of canonical edge keys of this tree."""
        return frozenset(self._edge_set)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of this tree."""
        return edge_key(u, v) in self._edge_set

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return len(self.adj[v])

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbours of ``v`` (read-only view)."""
        return tuple(self.adj[v])

    def iter_edges(self) -> Iterator[EdgeKey]:
        """Iterate over canonical edge keys."""
        return iter(self._edge_set)

    # ------------------------------------------------------------------
    # Path / LCA machinery
    # ------------------------------------------------------------------

    def lca(self, u: int, v: int) -> int:
        """Least common ancestor of ``u`` and ``v`` w.r.t. the root 0."""
        depth, parent = self._depth, self._parent
        while depth[u] > depth[v]:
            u = parent[u]
        while depth[v] > depth[u]:
            v = parent[v]
        while u != v:
            u = parent[u]
            v = parent[v]
        return u

    def distance(self, u: int, v: int) -> int:
        """Number of edges on the unique ``u``–``v`` path."""
        w = self.lca(u, v)
        return self._depth[u] + self._depth[v] - 2 * self._depth[w]

    def path_vertices(self, u: int, v: int) -> list[int]:
        """The unique path from ``u`` to ``v`` as a vertex list (inclusive)."""
        w = self.lca(u, v)
        parent = self._parent
        left = []
        x = u
        while x != w:
            left.append(x)
            x = parent[x]
        right = []
        x = v
        while x != w:
            right.append(x)
            x = parent[x]
        return left + [w] + right[::-1]

    def path_edges(self, u: int, v: int) -> list[EdgeKey]:
        """The unique path from ``u`` to ``v`` as canonical edge keys."""
        verts = self.path_vertices(u, v)
        return [edge_key(a, b) for a, b in zip(verts, verts[1:])]

    def median(self, a: int, b: int, c: int) -> int:
        """The unique vertex lying on all three pairwise paths of ``a,b,c``.

        For a tree this is ``argmax_depth{lca(a,b), lca(b,c), lca(a,c)}``.
        Section 4.3 calls this vertex the *junction* when splitting a
        component, and Section 4.4's *bending point* of a path ``[a, b]``
        with respect to an outside vertex ``c`` is ``median(a, b, c)``.
        """
        x, y, z = self.lca(a, b), self.lca(b, c), self.lca(a, c)
        d = self._depth
        best = x
        if d[y] > d[best]:
            best = y
        if d[z] > d[best]:
            best = z
        return best

    def bending_point(self, u: int, path_endpoints: tuple[int, int]) -> int:
        """Bending point of the path ``path_endpoints`` w.r.t. vertex ``u``.

        The unique vertex ``y`` on the path such that the ``u``–``y`` path
        avoids every other path vertex (Section 4.4).  Equals the median of
        ``u`` and the two endpoints.
        """
        a, b = path_endpoints
        return self.median(a, b, u)

    def wings(self, y: int, path_endpoints: tuple[int, int]) -> list[EdgeKey]:
        """The edges of the path that are incident on path-vertex ``y``.

        One edge if ``y`` is a path endpoint, two otherwise (Section 4.4).

        Raises
        ------
        ValueError
            If ``y`` does not lie on the path.
        """
        a, b = path_endpoints
        if self.median(a, b, y) != y:
            raise ValueError(f"vertex {y} is not on the path {a}..{b}")
        out: list[EdgeKey] = []
        if y != a:
            # First hop from y towards a.
            nxt = self._step_towards(y, a)
            out.append(edge_key(y, nxt))
        if y != b:
            nxt = self._step_towards(y, b)
            k = edge_key(y, nxt)
            if k not in out:
                out.append(k)
        return out

    def _step_towards(self, x: int, target: int) -> int:
        """The neighbour of ``x`` on the unique path to ``target``."""
        if x == target:
            raise ValueError("no step needed: x == target")
        w = self.lca(x, target)
        if x == w:
            # target is below x: climb from target up to the child of x.
            parent = self._parent
            y = target
            while parent[y] != x:
                y = parent[y]
            return y
        return self._parent[x]

    # ------------------------------------------------------------------
    # Subtree / component helpers (used by the decompositions)
    # ------------------------------------------------------------------

    def component_sizes_without(
        self, z: int, component: set[int] | None = None
    ) -> list[tuple[int, int]]:
        """Sizes of the subtrees obtained by deleting ``z``.

        Restricted to ``component`` if given (``component`` must induce a
        connected subtree containing ``z``).  Returns ``(neighbor, size)``
        per resulting component, keyed by the neighbour of ``z`` it hangs
        off.  Used by the balancer search (Section 4.2).
        """
        sizes: list[tuple[int, int]] = []
        for nb in self.adj[z]:
            if component is not None and nb not in component:
                continue
            cnt = 0
            stack = [(nb, z)]
            while stack:
                x, par = stack.pop()
                cnt += 1
                for y in self.adj[x]:
                    if y != par and (component is None or y in component):
                        stack.append((y, x))
            sizes.append((nb, cnt))
        return sizes

    def split_component(self, z: int, component: set[int]) -> list[set[int]]:
        """Split ``component`` by deleting ``z`` (Section 4.2's notion).

        Returns the vertex sets of the resulting connected subtrees.
        ``z`` itself belongs to none of them.
        """
        if z not in component:
            raise ValueError(f"splitter {z} not in component")
        pieces: list[set[int]] = []
        for nb in self.adj[z]:
            if nb not in component:
                continue
            piece: set[int] = set()
            stack = [(nb, z)]
            while stack:
                x, par = stack.pop()
                piece.add(x)
                for y in self.adj[x]:
                    if y != par and y in component:
                        stack.append((y, x))
            pieces.append(piece)
        return pieces

    def component_neighbors(self, component: set[int]) -> set[int]:
        """``Γ[C]``: vertices outside ``component`` adjacent to it (§4.1)."""
        out: set[int] = set()
        for x in component:
            for y in self.adj[x]:
                if y not in component:
                    out.add(y)
        return out

    def is_component(self, vertices: set[int]) -> bool:
        """Whether ``vertices`` induces a connected subtree (a *component*)."""
        if not vertices:
            return False
        start = next(iter(vertices))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in self.adj[x]:
                if y in vertices and y not in seen:
                    seen.add(y)
                    stack.append(y)
        return len(seen) == len(vertices)

    def find_balancer(self, component: set[int] | None = None) -> int:
        """Find a *balancer* (centroid) of ``component`` (Section 4.2).

        A vertex ``z`` such that deleting it splits the component into
        pieces of size at most ``⌊|C|/2⌋``.  Every component has one; we
        locate it by walking downhill from an arbitrary start towards the
        heaviest piece, which terminates in ``O(|C| · diameter)`` worst
        case and ``O(|C|)`` typically.
        """
        comp = component if component is not None else set(range(self.n))
        size = len(comp)
        if size == 1:
            return next(iter(comp))
        # Compute subtree sizes with one DFS from an arbitrary root of the
        # component, then walk towards any piece larger than half.
        root = next(iter(comp))
        order: list[int] = []
        par: dict[int, int] = {root: -1}
        stack = [root]
        while stack:
            x = stack.pop()
            order.append(x)
            for y in self.adj[x]:
                if y in comp and y != par[x]:
                    par[y] = x
                    stack.append(y)
        sub = {x: 1 for x in comp}
        for x in reversed(order):
            p = par[x]
            if p != -1:
                sub[p] += sub[x]
        half = size // 2
        z = root
        while True:
            heavy = None
            for y in self.adj[z]:
                if y not in comp:
                    continue
                piece = sub[y] if par.get(y) == z else size - sub[z]
                if piece > half:
                    heavy = y
                    break
            if heavy is None:
                return z
            z = heavy

    # ------------------------------------------------------------------

    def euler_index(self) -> "EulerTourIndex":
        """The (cached) Euler-tour index of this tree (rooted at 0)."""
        if self._euler is None:
            self._euler = EulerTourIndex(self)
        return self._euler

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (for plotting/debugging)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(self._edge_set)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeNetwork(id={self.network_id}, n={self.n})"


class EulerTourIndex:
    """Euler-tour arrays + O(1) batch LCA / ancestor / path-overlap tests.

    Built once per tree (``O(n log n)`` sparse table over the tour), this
    index turns the per-pair path computations of the conflict relation
    into NumPy gathers:

    * ``is_ancestor(a, b)`` — entry/exit-time interval containment;
    * ``batch_lca(u, v)`` — range-minimum over the tour depth array;
    * ``path_overlap_matrix(us, vs)`` — pairwise "do the routes share an
      edge" for whole instance populations, via the median identity: the
      intersection of ``path(a,b)`` with ``path(c,d)`` contains an edge
      iff ``median(a,b,c) != median(a,b,d)``.

    All query methods accept and return :mod:`numpy` integer arrays.
    """

    def __init__(self, tree: TreeNetwork):
        n = tree.n
        parent, depth = tree._parent, tree._depth
        tour: list[int] = []
        tin = [0] * n
        tout = [0] * n
        first = [-1] * n
        # Iterative Euler tour from the root (vertex 0): push a vertex on
        # entry and again after each child subtree returns.
        stack: list[tuple[int, int]] = [(0, 0)]  # (vertex, next-child index)
        kids = [[y for y in tree.adj[x] if y != parent[x]] for x in range(n)]
        while stack:
            x, ci = stack[-1]
            if ci == 0:
                tin[x] = len(tour)
                first[x] = len(tour)
                tour.append(x)
            if ci < len(kids[x]):
                stack[-1] = (x, ci + 1)
                stack.append((kids[x][ci], 0))
            else:
                tout[x] = len(tour)
                stack.pop()
                if stack:  # re-visit the parent on the way back up
                    tour.append(stack[-1][0])
        self.tour = np.asarray(tour, dtype=np.int64)
        self.tin = np.asarray(tin, dtype=np.int64)
        self.tout = np.asarray(tout, dtype=np.int64)
        self.first = np.asarray(first, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        tour_depth = self.depth[self.tour]

        m = len(tour)
        # floor(log2(k)) for k in 1..m, exact via the binary exponent.
        ks = np.arange(1, m + 1)
        self._log = np.concatenate(([0], np.frexp(ks.astype(np.float64))[1] - 1))
        levels = int(self._log[m]) + 1
        # Sparse table of argmins (positions into the tour) by depth.
        table = np.empty((levels, m), dtype=np.int64)
        table[0] = np.arange(m)
        for j in range(1, levels):
            half = 1 << (j - 1)
            width = m - (1 << j) + 1
            left = table[j - 1, :width]
            right = table[j - 1, half:half + width]
            take_right = tour_depth[right] < tour_depth[left]
            table[j, :width] = np.where(take_right, right, left)
            table[j, width:] = table[j - 1, width:]
        self._table = table
        self._tour_depth = tour_depth

    # ------------------------------------------------------------------

    def batch_lca(self, us, vs) -> np.ndarray:
        """Vectorized LCA of ``us[i]``/``vs[i]`` (arrays broadcast together)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        fu, fv = self.first[us], self.first[vs]
        lo = np.minimum(fu, fv)
        hi = np.maximum(fu, fv)
        k = self._log[hi - lo + 1]
        a = self._table[k, lo]
        b = self._table[k, hi - (1 << k) + 1]
        pos = np.where(self._tour_depth[b] < self._tour_depth[a], b, a)
        return self.tour[pos]

    def is_ancestor(self, anc, desc) -> np.ndarray:
        """Vectorized "is ``anc[i]`` an ancestor of ``desc[i]``" (inclusive)."""
        anc = np.asarray(anc, dtype=np.int64)
        desc = np.asarray(desc, dtype=np.int64)
        return (self.tin[anc] <= self.tin[desc]) & (self.tout[desc] <= self.tout[anc])

    def _median_grid(self, ws, us, vs, xs) -> np.ndarray:
        """``median(u_i, v_i, x_j)`` for the full (i, j) grid.

        ``ws`` must be ``lca(us, vs)`` (precomputed once per population).
        The median of three vertices is the deepest of their pairwise
        LCAs; with ``w = lca(u, v)`` fixed, only the two cross LCAs vary.
        """
        grid_u = np.broadcast_to(us[:, None], (len(us), len(xs)))
        grid_x = np.broadcast_to(xs[None, :], (len(us), len(xs)))
        l1 = self.batch_lca(grid_u.ravel(), grid_x.ravel()).reshape(grid_u.shape)
        grid_v = np.broadcast_to(vs[:, None], (len(vs), len(xs)))
        l2 = self.batch_lca(grid_v.ravel(), grid_x.ravel()).reshape(grid_v.shape)
        w = np.broadcast_to(ws[:, None], l1.shape)
        med = np.where(self.depth[l1] >= self.depth[w], l1, w)
        med = np.where(self.depth[l2] >= self.depth[med], l2, med)
        return med

    def path_overlap_matrix(self, us, vs) -> np.ndarray:
        """Pairwise edge-overlap of the paths ``path(us[i], vs[i])``.

        Returns the symmetric boolean matrix ``M[i, j]`` = "paths i and j
        share at least one edge" (diagonal True for any non-trivial path).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        ws = self.batch_lca(us, vs)
        m1 = self._median_grid(ws, us, vs, us)  # projection of u_j onto path i
        m2 = self._median_grid(ws, us, vs, vs)  # projection of v_j onto path i
        return m1 != m2
