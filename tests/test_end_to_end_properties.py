"""End-to-end property tests: on *arbitrary* small random instances, the
full pipelines honour their theorem bounds against brute-force optima.

These are the strongest tests in the suite: hypothesis searches instance
space for violations of Theorems 5.3, 6.3, 7.1 and 7.2.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    brute_force_optimal,
    random_line_problem,
    random_tree_problem,
    solve_line_arbitrary,
    solve_line_unit,
    solve_sequential_tree,
    solve_tree_arbitrary,
    solve_tree_unit,
    verify_line_solution,
    verify_tree_solution,
)

SMALL_TREE = dict(n=st.integers(4, 12), m=st.integers(1, 6),
                  r=st.integers(1, 3), seed=st.integers(0, 100_000))


@given(**SMALL_TREE)
@settings(max_examples=30, deadline=None)
def test_theorem53_property(n, m, r, seed):
    p = random_tree_problem(n=n, m=m, r=r, seed=seed, access_prob=0.8)
    eps = 0.1
    sol = solve_tree_unit(p, epsilon=eps, seed=seed)
    verify_tree_solution(p, sol, unit_height=True)
    opt = brute_force_optimal(p, max_instances=80)
    assert sol.profit >= opt.profit / (7 / (1 - eps)) - 1e-9
    assert sol.stats["opt_upper_bound"] >= opt.profit - 1e-6


@given(**SMALL_TREE)
@settings(max_examples=25, deadline=None)
def test_theorem63_property(n, m, r, seed):
    p = random_tree_problem(n=n, m=m, r=r, seed=seed, height_regime="mixed",
                            hmin=0.1, access_prob=0.8)
    eps = 0.1
    sol = solve_tree_arbitrary(p, epsilon=eps, seed=seed)
    verify_tree_solution(p, sol, unit_height=False)
    opt = brute_force_optimal(p, max_instances=80)
    assert sol.profit >= opt.profit / (80 / (1 - eps)) - 1e-9


@given(**SMALL_TREE)
@settings(max_examples=25, deadline=None)
def test_appendixA_property(n, m, r, seed):
    p = random_tree_problem(n=n, m=m, r=r, seed=seed, access_prob=0.8)
    sol = solve_sequential_tree(p)
    verify_tree_solution(p, sol, unit_height=True)
    opt = brute_force_optimal(p, max_instances=80)
    bound = 2.0 if not sol.stats["raise_alpha"] else 3.0
    assert sol.profit >= opt.profit / bound - 1e-9


@given(
    n_slots=st.integers(6, 16),
    m=st.integers(1, 5),
    r=st.integers(1, 2),
    seed=st.integers(0, 100_000),
)
@settings(max_examples=25, deadline=None)
def test_theorem71_property(n_slots, m, r, seed):
    p = random_line_problem(n_slots=n_slots, m=m, r=r, seed=seed,
                            max_len=max(1, n_slots // 3), window_slack=0.5)
    eps = 0.1
    sol = solve_line_unit(p, epsilon=eps, seed=seed)
    verify_line_solution(p, sol, unit_height=True)
    opt = brute_force_optimal(p, max_instances=80)
    assert sol.profit >= opt.profit / (4 / (1 - eps)) - 1e-9


@given(
    n_slots=st.integers(6, 14),
    m=st.integers(1, 5),
    seed=st.integers(0, 100_000),
)
@settings(max_examples=20, deadline=None)
def test_theorem72_property(n_slots, m, seed):
    p = random_line_problem(n_slots=n_slots, m=m, r=1, seed=seed,
                            height_regime="mixed", hmin=0.1,
                            max_len=max(1, n_slots // 3), window_slack=0.3)
    eps = 0.1
    sol = solve_line_arbitrary(p, epsilon=eps, seed=seed)
    verify_line_solution(p, sol, unit_height=False)
    opt = brute_force_optimal(p, max_instances=80)
    assert sol.profit >= opt.profit / (23 / (1 - eps)) - 1e-9
