"""The long-lived admission service: request/response over a session.

:class:`AdmissionService` turns the :class:`~repro.session.
AdmissionSession` kernel into a *server-shaped* object: events arrive
as requests from outside the process (stdin, a socket, a test driver),
every applied event is first written to an append-only **admission
journal** (:class:`~repro.io.JournalWriter` — JSON-lines or the compact
binary codec), and a killed service **warm-restarts** from that
journal — replaying the journaled events into a fresh session
reconstructs the exact ledger/metrics state, so resuming and finishing
a trace produces metrics identical to an uninterrupted run (timing
fields aside; replay decisions are deterministic).

Request/response API (JSON-safe dicts, see :meth:`AdmissionService.
handle`):

========  ============================================================
op        meaning
========  ============================================================
admit     an arrival: ``{"op": "admit", "demand": 3, "time": 1.5}``
release   a departure: ``{"op": "release", "demand": 3, "time": 9.0}``
tick      a clock edge (batching policies may flush)
submit    a raw trace-schema event: ``{"op": "submit", "event": {...}}``
feed      a batch of raw events: ``{"op": "feed", "events": [...]}`` —
          one decode/validate/journal-commit amortized over the batch
query     one demand's admission status
stats     live counters (events, accepted, profit, utilization, ...),
          the transport's ``server`` section (same keys on every
          transport; nulls outside the async server), the live dual
          upper bound, and the metrics registry (dict + Prometheus
          text)
snapshot  the currently-admitted set as a solution document
close     final flush + verify; responds with the full metrics record
trace     the flight-recorder ring as Chrome ``trace_event`` JSON
          (``"last"`` caps the span count)
explain   one demand's decision provenance:
          ``{"op": "explain", "demand": 3}``
========  ============================================================

Event responses report two watermarks when journaling: ``seq`` (this
event's sequence number — *accepted*) and ``commit_seq`` (the last
sequence the journal has flushed to the OS, fsynced under ``--sync`` —
*durable*).  With the default ``sync_window=1`` they always coincide;
wider group-commit windows trade a bounded acknowledgement lag for
amortized durability cost.

**Checkpoints** (``checkpoint_every=N``) periodically append the full
serialized session state to the journal, so :meth:`resume` restores the
last checkpoint and replays only the tail — restart cost proportional
to the post-checkpoint suffix, not total history.  :meth:`compact`
rewrites a journal as header + one checkpoint.

With ``shards > 1`` the service runs the **sharded coordinator
backend**: the policy is bound to the exact global coordinator view of
a :class:`~repro.sharding.ledger.ShardedLedger` (so every registered
policy works unmodified, priced against true global load), and every
admission / eviction / release of a cut-interior demand is mirrored
into its shard's ledger — the per-shard occupancy views the sharded
deployment story needs, verified alongside the coordinator at close.
"""

from __future__ import annotations

import os
import time

from ..io import (
    JournalWriter,
    _fsync_dir,
    event_from_dict,
    scan_journal,
    solution_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from ..obs import tracing as _tracing
from ..obs.explain import explain_demand
from ..obs.metrics import MetricsRegistry
from ..online.events import Arrival, Departure, EventTrace, Tick
from ..online.policies import make_policy
from ..session.kernel import (AdmissionSession, Decision, ReplayResult,
                              certificate_of)

__all__ = ["AdmissionService"]


class AdmissionService:
    """A journaled, resumable admission session behind a request API.

    Parameters
    ----------
    trace:
        The :class:`~repro.online.events.EventTrace` whose frozen demand
        population the service admits over.  The service does *not*
        consume the trace's events — they arrive as requests — but the
        population, and the provenance echoed into results, come from
        here (and ``resume`` finishes a partially-served trace's
        remaining events from it).
    policy:
        Registry policy name; ``params`` are its constructor keywords.
    journal_path:
        Write-ahead journal location; ``None`` disables journaling
        (no warm restart, useful for benchmarks).
    shards / shard_by:
        ``shards > 1`` selects the sharded coordinator backend.
    sync:
        ``fsync`` the journal at every commit (power-loss durability;
        plain flushing already survives a process kill).
    fmt:
        Journal codec, ``"jsonl"`` (default) or ``"binary"``.
    sync_window / sync_interval_ms:
        Group-commit window: commit every N buffered events and/or
        whenever the oldest buffered event is T ms old.  The default
        window of 1 commits per record.
    checkpoint_every:
        Append a state checkpoint to the journal every N applied
        events (0 disables).  The cadence travels in the journal
        header so a resumed service keeps checkpointing.
    """

    def __init__(self, trace: EventTrace, policy: str = "greedy-threshold",
                 params: dict | None = None, *,
                 journal_path: str | None = None,
                 shards: int = 1, shard_by: str = "subtree",
                 sync: bool = False, fmt: str = "jsonl",
                 sync_window: int = 1,
                 sync_interval_ms: float | None = None,
                 checkpoint_every: int = 0):
        self.trace = trace
        self.policy_name = policy
        self.params = dict(params or {})
        self.shards = int(shards)
        self.shard_by = shard_by
        self.checkpoint_every = int(checkpoint_every)
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        policy_obj = make_policy(policy, **self.params)
        self.sharded = None
        self._local_iids: dict[int, dict[int, int]] = {}
        if self.shards > 1:
            from ..sharding.ledger import ShardedLedger
            from ..sharding.planner import ShardPlanner

            plan = ShardPlanner(shard_by).plan(trace.problem, self.shards)
            self.sharded = ShardedLedger(trace.problem, plan)
            self.session = AdmissionSession(
                trace.problem, policy_obj,
                ledger=self.sharded.coordinator, trace_meta=trace.meta,
            )
        else:
            self.session = AdmissionSession(trace.problem, policy_obj,
                                            trace_meta=trace.meta)
        #: Events applied so far (== journal event count when journaling).
        self.position = 0
        # Stream-validity bookkeeping, mirroring EventTrace's invariants:
        # requests come from outside the process, so the service (not the
        # kernel) is the layer that must reject duplicate arrivals and
        # departures of absent demands with an error *response* instead
        # of a half-applied event.
        self._arrived: set[int] = set()
        self._departed: set[int] = set()
        self._last_time = 0.0
        self._next_checkpoint = self.checkpoint_every or 0
        self.result: ReplayResult | None = None
        #: The service's metrics home (``stats`` op, --metrics-port).
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_requests_total", "requests handled by this process")
        self._req_latency = self.registry.histogram(
            "repro_request_latency_us",
            "request handling latency (microseconds)", timing=True)
        #: A hosting server (the async front door) sets this to its
        #: ``server_stats`` so every transport's ``stats`` op carries
        #: the same ``server`` section; ``None`` yields the null shape.
        self.server_stats_provider = None
        self.journal: JournalWriter | None = None
        if journal_path is not None:
            self.journal = JournalWriter(
                journal_path, self._header(), sync=sync, fmt=fmt,
                sync_window=sync_window, sync_interval_ms=sync_interval_ms,
            )

    def _header(self) -> dict:
        """The self-contained journal header (rebuilds this service)."""
        return {
            "policy": self.policy_name,
            "params": dict(self.params),
            "shards": self.shards,
            "shard_by": self.shard_by,
            "checkpoint_every": self.checkpoint_every,
            "trace": trace_to_dict(self.trace),
        }

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def _validate(self, ev, arrived: set | None = None,
                  departed: set | None = None) -> None:
        """Reject an invalid event against the given stream state
        (defaults to the live sets; the batched path validates against
        running copies so a bad batch is rejected whole)."""
        arrived = self._arrived if arrived is None else arrived
        departed = self._departed if departed is None else departed
        m = self.trace.problem.num_demands
        if isinstance(ev, (Arrival, Departure)):
            if not (0 <= ev.demand_id < m):
                raise ValueError(
                    f"unknown demand {ev.demand_id} (population has {m})"
                )
        if isinstance(ev, Arrival):
            if ev.demand_id in arrived:
                raise ValueError(f"demand {ev.demand_id} already arrived")
        elif isinstance(ev, Departure):
            if ev.demand_id not in arrived:
                raise ValueError(
                    f"demand {ev.demand_id} departs before arriving"
                )
            if ev.demand_id in departed:
                raise ValueError(f"demand {ev.demand_id} already departed")

    def submit_event(self, ev) -> Decision:
        """Validate, journal (write-ahead), then apply one event."""
        self._validate(ev)
        if self.journal is not None:
            self.journal.append(ev)
        decision = self._apply(ev)
        self._maybe_checkpoint()
        return decision

    def feed_events(self, events) -> dict:
        """Validate, journal and apply a whole batch of raw events.

        The batched hot path: one request decode, one validation sweep,
        one journal commit window and one dispatch loop amortized over
        the batch.  The **whole batch is validated before anything is
        journaled or applied**, so a bad record rejects the request
        without half-applying a prefix.  Returns the response payload
        (events applied, admissions the batch produced, stream
        position, and the journal watermarks when journaling).
        """
        if self.session.closed:
            raise RuntimeError("session is closed")
        evs = [ev if isinstance(ev, (Arrival, Departure, Tick))
               else event_from_dict(ev) for ev in events]
        arrived, departed = set(self._arrived), set(self._departed)
        for ev in evs:
            self._validate(ev, arrived, departed)
            if isinstance(ev, Arrival):
                arrived.add(ev.demand_id)
            elif isinstance(ev, Departure):
                departed.add(ev.demand_id)
        journal = self.journal
        if journal is not None:
            for ev in evs:
                journal.append(ev)
        adm0 = len(self.session.ledger.admission_log)
        if self.sharded is None:
            # No mirroring to drive, so skip Decision assembly entirely.
            # feed_many engages the columnar batch-decision fast path
            # when the policy advertises a kernel (decisions and journal
            # bytes are identical either way — the journal was written
            # above, before any state changed).
            self.session.feed_many(evs)
            arrived, departed = self._arrived, self._departed
            last = self._last_time
            for ev in evs:
                if isinstance(ev, Arrival):
                    arrived.add(ev.demand_id)
                elif isinstance(ev, Departure):
                    departed.add(ev.demand_id)
                if ev.time > last:
                    last = ev.time
            self._last_time = last
            self.position += len(evs)
        else:
            for ev in evs:
                self._apply(ev)
        self._maybe_checkpoint()
        doc = {
            "applied": len(evs),
            "accepted": len(self.session.ledger.admission_log) - adm0,
            "position": self.position,
        }
        if journal is not None:
            doc["seq"] = journal.seq
            doc["commit_seq"] = journal.commit_seq
        return doc

    def _apply(self, ev) -> Decision:
        """Apply an already-journaled (or recovered) event."""
        decision = self.session.submit(ev)
        if isinstance(ev, Arrival):
            self._arrived.add(ev.demand_id)
        elif isinstance(ev, Departure):
            self._departed.add(ev.demand_id)
        self._last_time = max(self._last_time, ev.time)
        self._mirror(decision)
        self.position += 1
        return decision

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def _maybe_checkpoint(self) -> None:
        if (self.journal is not None and self.checkpoint_every
                and self.position >= self._next_checkpoint):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Append a state checkpoint to the journal (forces a commit).

        A resume restores the latest checkpoint and replays only the
        events after it.  Returns the stream position the checkpoint
        covers.
        """
        if self.journal is None:
            raise RuntimeError("checkpointing requires a journal")
        self.journal.checkpoint(self.checkpoint_state())
        self._next_checkpoint = self.position + (self.checkpoint_every or 0)
        return self.position

    def checkpoint_state(self) -> dict:
        """The full mutable session state as a JSON-safe dict.

        Bit-exact by construction: the ledger stores its float state
        verbatim and the policy exports everything its decisions depend
        on, so restore + tail replay equals uninterrupted replay (the
        warm-restart equivalence tests quantify this over every policy
        and kill point).  Sharded services store the coordinator only;
        the per-shard mirrors are derived views, rebuilt on restore.
        """
        return {
            "position": self.position,
            "last_time": self._last_time,
            "arrived": sorted(self._arrived),
            "departed": sorted(self._departed),
            "counters": self.session.export_counters(),
            "ledger": self.session.ledger.export_state(),
            "policy": self.session.policy.export_state(),
        }

    def _restore_state(self, state: dict) -> None:
        """Reset this freshly-built service to a checkpoint state."""
        self.position = int(state["position"])
        self._last_time = float(state["last_time"])
        self._arrived = {int(d) for d in state["arrived"]}
        self._departed = {int(d) for d in state["departed"]}
        self.session.restore_counters(state["counters"])
        self.session.ledger.restore_state(state["ledger"])
        self.session.policy.restore_state(state["policy"])
        self._next_checkpoint = self.position + (self.checkpoint_every or 0)
        if self.sharded is not None:
            self._rebuild_shard_mirrors()

    def _rebuild_shard_mirrors(self) -> None:
        """Re-admit the current interior admitted set into the shard
        ledgers.  Checkpoints store the coordinator only: the mirrors
        are pure occupancy views derived from it, so rebuilding them
        from the admitted set reproduces exactly what incremental
        mirroring would show for the demands still in the system."""
        plan = self.sharded.plan
        for d, gid in self.session.ledger.admitted_items():
            if plan.is_boundary(d):
                continue
            s = plan.shard_of(d)
            self.sharded.shard_ledger(s).admit(self._local_iid(s, gid))

    # ------------------------------------------------------------------
    # Sharded-backend mirroring
    # ------------------------------------------------------------------

    def _local_iid(self, s: int, gid: int) -> int:
        """Shard ``s``'s local instance id of global instance ``gid``."""
        if s not in self._local_iids:
            self._local_iids[s] = {
                g: l for l, g in enumerate(self.sharded.plan.instance_map(s))
            }
        return self._local_iids[s][gid]

    def _mirror(self, decision: Decision) -> None:
        """Mirror coordinator mutations into the per-shard ledgers.

        The coordinator decided; shard ledgers only track their local
        occupancy.  Shard loads are always ≤ the coordinator's on the
        same edges, so every mirrored admission is feasible by
        construction.  Evictions precede admissions (a preemption frees
        the route before the newcomer lands).
        """
        if self.sharded is None:
            return
        plan = self.sharded.plan
        for d, _gid in decision.evicted:
            if plan.is_boundary(d):
                continue
            s = plan.shard_of(d)
            led = self.sharded.shard_ledger(s)
            local = self.sharded.local_demand_id(s, d)
            if led.is_admitted(local):
                led.evict(local)
        for d, gid in decision.admitted:
            if plan.is_boundary(d):
                continue
            s = plan.shard_of(d)
            self.sharded.shard_ledger(s).admit(self._local_iid(s, gid))
        if decision.kind == "departure" and decision.demand_id is not None:
            d = decision.demand_id
            if not plan.is_boundary(d):
                s = plan.shard_of(d)
                led = self.sharded.shard_ledger(s)
                local = self.sharded.local_demand_id(s, d)
                if led.is_admitted(local):
                    led.release(local)

    # ------------------------------------------------------------------
    # The request/response API
    # ------------------------------------------------------------------

    def _event_of(self, req: dict):
        op = req["op"]
        if op == "submit":
            return event_from_dict(req["event"])
        time = float(req.get("time", self._last_time))
        if op == "admit":
            return Arrival(time, int(req["demand"]))
        if op == "release":
            return Departure(time, int(req["demand"]))
        if op == "tick":
            return Tick(time)
        raise ValueError(f"op {op!r} carries no event")

    def handle(self, req: dict) -> dict:
        """Serve one request dict; always returns a response dict.

        Domain errors (unknown demands, duplicate arrivals, bad ops,
        submitting after close) come back as ``{"ok": false, "error":
        ...}`` responses — the service never half-applies a request.

        A request may carry an ``id`` (any JSON value); the response
        echoes it verbatim — success or error — so pipelined clients
        can match responses to requests out of order.
        """
        self._requests.inc()
        if _tracing.RECORDER.enabled:
            t0 = time.perf_counter()
            resp = self._handle_op(req)
            dt = time.perf_counter() - t0
            self._req_latency.observe(dt * 1e6)
            _tracing.record_complete("service.handle", t0, dt,
                                     {"op": req.get("op")})
        else:
            resp = self._handle_op(req)
        if "id" in req:
            resp["id"] = req["id"]
        return resp

    def _handle_op(self, req: dict) -> dict:
        op = req.get("op")
        try:
            if op in ("submit", "admit", "release", "tick"):
                decision = self.submit_event(self._event_of(req))
                resp = {"ok": True, "op": op,
                        "decision": decision.to_dict()}
                if self.journal is not None:
                    resp["seq"] = self.journal.seq
                    resp["commit_seq"] = self.journal.commit_seq
                return resp
            if op == "feed":
                events = req.get("events")
                if not isinstance(events, list):
                    raise ValueError('op "feed" needs an "events" list')
                return {"ok": True, "op": op, **self.feed_events(events)}
            if op == "query":
                return {"ok": True, "op": op,
                        **self.query(int(req["demand"]))}
            if op == "stats":
                doc = self.stats()
                # The fast-path counters ride along top-level too, so a
                # dashboard polling for batching health needs no
                # deep-path knowledge of the stats document.
                return {"ok": True, "op": op, "stats": doc,
                        "fastpath": doc["fastpath"]}
            if op == "snapshot":
                return {"ok": True, "op": op,
                        "solution": solution_to_dict(self.session.solution())}
            if op == "close":
                result = self.close(verify=bool(req.get("verify", True)))
                return {"ok": True, "op": op,
                        "metrics": result.metrics.to_dict(),
                        "policy_stats": result.policy_stats}
            if op == "trace":
                last = req.get("last")
                events = _tracing.RECORDER.events(
                    None if last is None else int(last))
                return {"ok": True, "op": op, "spans": len(events),
                        "trace": _tracing.chrome_trace(events)}
            if op == "explain":
                return {"ok": True, "op": op,
                        "explain": self.explain(int(req["demand"]))}
            raise ValueError(
                f"unknown op {op!r}; want admit/release/tick/submit/feed/"
                "query/stats/snapshot/close/trace/explain"
            )
        except (KeyError, ValueError, TypeError, RuntimeError) as exc:
            return {"ok": False, "op": op, "error": str(exc)}

    def query(self, demand_id: int) -> dict:
        """One demand's admission status on the authoritative ledger."""
        ledger = self.session.ledger
        if not (0 <= demand_id < self.trace.problem.num_demands):
            raise ValueError(f"unknown demand {demand_id}")
        return {
            "demand": demand_id,
            "admitted": ledger.is_admitted(demand_id),
            "instance": ledger.admitted_instance(demand_id),
            "was_admitted": ledger.was_admitted(demand_id),
            "was_evicted": ledger.was_evicted(demand_id),
        }

    def explain(self, demand_id: int) -> dict:
        """Decision provenance for one demand (a pure query — see
        :func:`~repro.obs.explain.explain_demand`)."""
        return explain_demand(
            self.trace.problem, self.session.ledger, self.session.policy,
            demand_id, arrived=self._arrived, departed=self._departed)

    def _sync_metrics(self) -> None:
        """Derive the registry's gauges from the live session state.

        Gauges are *recomputed* from the ledger/session counters rather
        than incremented on the hot path, so they cost nothing per
        event — and a warm restart is continuous by construction: the
        restored session state carries the pre-kill cumulative counts,
        and the first sync after :meth:`resume` republishes them.
        """
        snap = self.session.snapshot()
        reg = self.registry
        for key, name in (
            ("events", "repro_events_total"),
            ("arrivals", "repro_arrivals_total"),
            ("accepted", "repro_admits_total"),
            ("evictions", "repro_evictions_total"),
        ):
            reg.gauge(name).set(snap[key])
        reg.gauge("repro_rejects_total").set(
            snap["arrivals"] - snap["accepted"])
        reg.gauge("repro_admitted").set(snap["num_admitted"])
        reg.gauge("repro_utilization").set(snap["utilization"])
        reg.gauge("repro_realized_profit").set(snap["realized_profit"])
        reg.gauge("repro_penalty_paid").set(snap["penalty_paid"])
        reg.gauge("repro_position").set(self.position)
        reg.gauge("repro_commit_lag").set(
            self.journal.seq - self.journal.commit_seq
            if self.journal is not None else 0)
        fp = self.session.fastpath_stats
        reg.gauge("repro_fastpath_runs_total").set(fp["runs"])
        reg.gauge("repro_fastpath_batched_events_total").set(
            fp["batched_events"])
        reg.gauge("repro_fastpath_scalar_fallbacks_total").set(
            fp["scalar_fallbacks"])

    def _server_section(self) -> dict:
        """The transport block — real counters under the async front
        door, the same keys as nulls elsewhere (dashboards never
        special-case the transport)."""
        provider = self.server_stats_provider
        if provider is not None:
            return provider()
        return {
            "clients": None,
            "max_clients": None,
            "requests_total": None,
            "requests_per_client": None,
            "dispatch_queue_depth": None,
            "backpressured_clients": None,
            "overlimit_rejects": None,
            "commit_lag": (self.journal.seq - self.journal.commit_seq
                           if self.journal is not None else None),
        }

    def stats(self) -> dict:
        """Live counters, plus per-shard occupancy in sharded mode."""
        doc = self.session.snapshot()
        doc["position"] = self.position
        doc["policy"] = self.policy_name
        doc["journaled"] = self.journal is not None
        # Columnar fast-path health: whether the session engaged the
        # batch kernels, and how much of the stream they actually
        # vectorized (live counters, not checkpointed state).
        doc["fastpath"] = dict(self.session.fastpath_stats)
        if self.journal is not None:
            doc["seq"] = self.journal.seq
            doc["commit_seq"] = self.journal.commit_seq
            doc["commit_lag"] = self.journal.seq - self.journal.commit_seq
        doc["server"] = self._server_section()
        # The live optimality headline: a price-carrying policy's dual
        # certificate is a pure read, so the gap to OPT≤ is available
        # mid-stream at every poll.
        cert = certificate_of(self.session.policy)
        doc["dual_upper_bound"] = cert["upper_bound"] if cert else None
        self._sync_metrics()
        doc["metrics"] = self.registry.export()
        doc["metrics_text"] = self.registry.render_prometheus()
        if self.sharded is not None:
            rows = []
            for s in range(self.sharded.plan.n_shards):
                led = self.sharded.shard_ledger(s)
                rows.append({
                    "shard": s,
                    "admitted": led.num_admitted,
                    "utilization": led.utilization(),
                })
            doc["shards"] = rows
            doc["boundary_admitted"] = sum(
                1 for d, _ in self.session.ledger.admitted_items()
                if self.sharded.plan.is_boundary(d)
            )
        return doc

    def close(self, *, verify: bool = True) -> ReplayResult:
        """Final flush + verification; commits and closes the journal."""
        self.result = self.session.close(verify=verify)
        if verify and self.sharded is not None:
            for led in self.sharded._shard_ledgers:
                if led is not None:
                    led.verify()
        if self.journal is not None:
            self.journal.close()
        return self.result

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------

    @classmethod
    def _rebuild(cls, journal_path: str, *,
                 checkpoint_every: int | None = None):
        """Reconstruct a (journal-less) service from a journal.

        One streaming scan finds the last checkpoint and the event tail
        after it; the checkpoint is restored, the tail replayed — cost
        proportional to the tail, not total history.  Returns
        ``(service, good_bytes, fmt)`` so callers can reattach a writer
        or rewrite the file.
        """
        header, ckpt, tail, good_bytes, fmt = scan_journal(journal_path)
        trace = trace_from_dict(header["trace"])
        svc = cls(
            trace, header["policy"], header.get("params") or {},
            journal_path=None,
            shards=int(header.get("shards", 1)),
            shard_by=header.get("shard_by", "subtree"),
            checkpoint_every=(int(header.get("checkpoint_every", 0))
                              if checkpoint_every is None
                              else checkpoint_every),
        )
        if ckpt is not None:
            svc._restore_state(ckpt)
        for ev in tail:
            svc._apply(ev)
        # Republish the cumulative gauges from the restored state, so a
        # dashboard scraping right after a warm restart sees the
        # pre-kill admit/reject/evict totals, not zeros.
        svc._sync_metrics()
        return svc, good_bytes, fmt

    @classmethod
    def resume(cls, journal_path: str, *, sync: bool = False,
               sync_window: int = 1, sync_interval_ms: float | None = None,
               checkpoint_every: int | None = None) -> "AdmissionService":
        """Rebuild a service from its journal and reattach to it.

        The last checkpoint (if any) is restored and only the journaled
        events after it are re-applied (replay is deterministic, so the
        rebuilt ledger/metrics state is exactly the killed service's); a
        torn final journal record is dropped and the file truncated past
        it, and new events append to the same journal in its existing
        codec.  ``service.position`` tells how far the stream got.
        ``checkpoint_every=None`` keeps the cadence recorded in the
        journal header.
        """
        svc, good_bytes, _fmt = cls._rebuild(
            journal_path, checkpoint_every=checkpoint_every)
        svc.journal = JournalWriter(
            journal_path, sync=sync, sync_window=sync_window,
            sync_interval_ms=sync_interval_ms,
            start_at=good_bytes, seq0=svc.position,
        )
        svc._next_checkpoint = svc.position + (svc.checkpoint_every or 0)
        return svc

    @classmethod
    def compact(cls, journal_path: str, *,
                fmt: str | None = None) -> dict:
        """Rewrite a journal as header + one checkpoint of its state.

        The journal is rebuilt (checkpoint + tail replay), its full
        state is re-serialized as a single checkpoint, and the file is
        atomically replaced — resumes then restore in O(state) instead
        of replaying the whole history.  ``fmt`` converts the codec
        (``None`` keeps the existing one).  Safe on a journal whose
        writer was killed (the torn tail is dropped, exactly as resume
        would).  Returns ``{"position", "bytes_before", "bytes_after",
        "format"}``.
        """
        svc, _good, cur_fmt = cls._rebuild(journal_path)
        out_fmt = cur_fmt if fmt is None else fmt
        bytes_before = os.path.getsize(journal_path)
        directory = os.path.dirname(os.path.abspath(journal_path))
        tmp = journal_path + ".compact.tmp"
        try:
            with JournalWriter(tmp, svc._header(), fmt=out_fmt) as jw:
                jw.checkpoint(svc.checkpoint_state())
            os.replace(tmp, journal_path)
            _fsync_dir(directory)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return {
            "position": svc.position,
            "bytes_before": bytes_before,
            "bytes_after": os.path.getsize(journal_path),
            "format": out_fmt,
        }

    def run_remaining(self, *, verify: bool = True,
                      batch: int = 256) -> ReplayResult:
        """Finish the trace: submit every not-yet-applied trace event.

        Valid when the service's request stream is (a prefix of) the
        trace's own event sequence — the ``repro serve``/``repro
        resume`` workflow — since ``position`` then indexes the first
        outstanding trace event.  Events go through the batched
        :meth:`feed_events` path in ``batch``-sized chunks.  Returns
        the final :class:`~repro.session.kernel.ReplayResult`, which
        matches an uninterrupted replay of the whole trace exactly
        (timing fields aside).
        """
        remaining = self.trace.events[self.position:]
        for i in range(0, len(remaining), max(batch, 1)):
            self.feed_events(remaining[i:i + max(batch, 1)])
        return self.close(verify=verify)
