"""Rule modules; importing this package registers every rule."""

from . import (api_hygiene, certificates, determinism, event_loop,
               fork_safety, observability, protocol, state_sym,
               vectorization)

__all__ = ["api_hygiene", "certificates", "determinism", "event_loop",
           "fork_safety", "observability", "protocol", "state_sym",
           "vectorization"]
