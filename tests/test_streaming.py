"""Tests for the streamed sharding backend (``repro.sharding.streaming``).

The load-bearing guarantees:

* the **two-phase** streamed driver is *byte-identical* to the
  classic :class:`~repro.sharding.ShardedDriver` — merged metrics,
  per-shard results, boundary result and final admitted set — at
  shards ∈ {1, 2, 4} for every registered policy (the shared-geometry
  fast path changes cost, never outcome);
* the shared :class:`~repro.core.conflict.ConflictIndex` slices answer
  exactly as from-scratch per-shard builds;
* ``_split_streams`` routes the trace event-for-event identically to
  ``plan.subtrace`` / ``plan.boundary_events``;
* the **eager** watermark boundary mode is deterministic: inline and
  forked execution produce byte-identical results.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.io import load_trace
from repro.online.metrics import deterministic_metrics as _deterministic
from repro.online.state import CapacityLedger
from repro.sharding import (
    ShardedDriver,
    ShardPlanner,
    SharedGeometry,
    StreamedShardedDriver,
)
from repro.sharding.streaming import _split_streams

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: The corpus policy grid (mirrors tests/make_trace_corpus.py).
POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 32}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


@pytest.fixture(scope="module")
def tree_trace():
    return load_trace(str(DATA_DIR / "trace_poisson_tree.json"))


@pytest.fixture(scope="module")
def line_trace():
    return load_trace(str(DATA_DIR / "trace_bursty_line.json"))


def _result_fingerprint(result) -> dict:
    """Everything deterministic a sharded replay produced."""
    doc = {
        "merged": _deterministic(result.merged),
        "plan": result.plan,
        "shards": [
            {
                "metrics": _deterministic(r.metrics),
                "admissions": r.admission_log,
                "evictions": r.eviction_log,
                "selected": sorted(
                    (i.demand_id, i.instance_id)
                    for i in r.final_solution.selected
                ) if r.final_solution is not None else None,
            }
            for r in result.shard_results
        ],
        "boundary": (
            {
                "metrics": _deterministic(result.boundary_result.metrics),
                "admissions": result.boundary_result.admission_log,
                "evictions": result.boundary_result.eviction_log,
            }
            if result.boundary_result is not None else None
        ),
        "selected": sorted(
            (i.demand_id, i.instance_id)
            for i in result.merged_solution.selected
        ) if result.merged_solution is not None else None,
    }
    return doc


class TestTwoPhaseByteIdentity:
    @pytest.mark.parametrize("policy,params", POLICIES,
                             ids=[p for p, _ in POLICIES])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_tree_identical_to_sharded_driver(self, tree_trace, shards,
                                              policy, params):
        base = ShardedDriver(shards, processes=1).run(
            tree_trace, policy, params)
        streamed = StreamedShardedDriver(shards, processes=1).run(
            tree_trace, policy, params)
        assert streamed.mode == "two-phase"
        assert _result_fingerprint(streamed) == _result_fingerprint(base)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_line_identical_to_sharded_driver(self, line_trace, shards):
        base = ShardedDriver(shards, shard_by="layer", processes=1).run(
            line_trace, "greedy-threshold")
        streamed = StreamedShardedDriver(
            shards, shard_by="layer", processes=1).run(
            line_trace, "greedy-threshold")
        assert _result_fingerprint(streamed) == _result_fingerprint(base)

    def test_forked_matches_inline(self, tree_trace):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        inline = StreamedShardedDriver(2, processes=1).run(
            tree_trace, "preempt-density", {"factor": 1.2})
        forked = StreamedShardedDriver(2, processes=2).run(
            tree_trace, "preempt-density", {"factor": 1.2})
        assert _result_fingerprint(forked) == _result_fingerprint(inline)


class TestSharedGeometry:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sliced_index_matches_scratch_build(self, tree_trace, shards):
        problem = tree_trace.problem
        plan = ShardPlanner("subtree").plan(problem, shards)
        geometry = SharedGeometry(problem, plan)
        for s in range(plan.n_shards):
            view = geometry.shard_view(s)
            scratch = CapacityLedger(plan.subproblem(s))
            n = len(scratch.instances)
            assert len(view.instances) == n
            for k in range(n):
                assert (set(view.index.neighbors(k))
                        == set(scratch.index.neighbors(k)))
                assert (view.index.edges_of(k)
                        == scratch.index.edges_of(k))

    @pytest.mark.parametrize("shards", [2, 4])
    def test_relabeled_instances_match_subproblem(self, tree_trace, shards):
        problem = tree_trace.problem
        plan = ShardPlanner("subtree").plan(problem, shards)
        geometry = SharedGeometry(problem, plan)
        for s in range(plan.n_shards):
            view = geometry.shard_view(s)
            scratch = plan.subproblem(s).instances()
            assert list(view.instances) == list(scratch)

    def test_coordinator_covers_full_population(self, tree_trace):
        problem = tree_trace.problem
        plan = ShardPlanner("subtree").plan(problem, 2)
        geometry = SharedGeometry(problem, plan)
        assert (len(geometry.coordinator.instances)
                == len(problem.instances()))


class TestSplitStreams:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_routes_match_plan_subtraces(self, tree_trace, shards):
        plan = ShardPlanner("subtree").plan(tree_trace.problem, shards)
        shard_events, shard_gidx, boundary_events, boundary_gidx, _ = (
            _split_streams(plan, tree_trace))
        for s in range(plan.n_shards):
            expect = plan.subtrace(s, tree_trace).events
            assert shard_events[s] == list(expect)
            # Watermark indexes are strictly increasing positions into
            # the global stream.
            assert shard_gidx[s] == sorted(shard_gidx[s])
            assert all(tree_trace.events[i] == ev for i, ev in
                       zip(shard_gidx[s], shard_events[s])
                       if not hasattr(ev, "demand_id"))
        assert boundary_events == list(plan.boundary_events(tree_trace))
        assert boundary_gidx == sorted(boundary_gidx)


class TestEagerBoundary:
    def test_eager_inline_matches_fork(self, tree_trace):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        inline = StreamedShardedDriver(2, boundary="eager",
                                       processes=1).run(
            tree_trace, "greedy-threshold")
        forked = StreamedShardedDriver(2, boundary="eager",
                                       processes=2).run(
            tree_trace, "greedy-threshold")
        assert inline.mode == "eager"
        assert _result_fingerprint(forked) == _result_fingerprint(inline)

    def test_eager_single_shard_matches_two_phase(self, tree_trace):
        # With one shard there is no cross-shard race: the eager merge
        # degenerates to the serialized order, so outcomes must agree
        # with the two-phase mode's deterministic counters.
        eager = StreamedShardedDriver(1, boundary="eager",
                                      processes=1).run(
            tree_trace, "greedy-threshold")
        two = StreamedShardedDriver(1, processes=1).run(
            tree_trace, "greedy-threshold")
        assert (_deterministic(eager.merged)
                == _deterministic(two.merged))

    def test_eager_is_feasible_and_accounts_withdrawals(self, tree_trace):
        result = StreamedShardedDriver(2, boundary="eager",
                                       processes=1).run(
            tree_trace, "greedy-threshold")
        streaming = result.policy_stats["streaming"]
        assert streaming["withdrawn"]["count"] >= 0
        assert streaming["boundary_decided_early"] >= 0
        merged = _deterministic(result.merged)
        assert merged["accepted"] >= 0
        assert result.merged_solution is not None
