"""Durability fast-path tests: binary codec, group commit, checkpoints.

Four families, mirroring the guarantees the journal makes:

* **codec roundtrip** — the binary and JSON-lines codecs encode the
  same header/event/checkpoint stream and decode back to identical
  events, over a pinned corpus and randomized traces;
* **torn tails** — truncating the final record at *every* byte offset
  (both formats) silently drops only that record — never an exception,
  never a short read of earlier records;
* **group commit** — an abandoned (killed) writer loses exactly the
  uncommitted window; ``commit_seq`` is the durable watermark the
  reader recovers to;
* **checkpoint/compact equivalence** — warm restarts from a
  checkpointed or compacted journal are byte-identical to the
  uninterrupted replay, for every policy and both formats, and resume
  replays only the post-checkpoint tail.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.io import (
    JOURNAL_FORMATS,
    JournalWriter,
    event_to_dict,
    iter_journal,
    read_journal,
    scan_journal,
)
from repro.online import generate_trace, make_policy, replay
from repro.online.events import Arrival, Departure, Tick
from repro.service import AdmissionService

HEADER = {"kind": "admission-journal", "format": 1, "policy": "greedy-threshold"}

#: Pinned corpus: every event type, extreme and fractional values.
CORPUS = [
    Arrival(time=0.0, demand_id=0),
    Arrival(time=0.125, demand_id=1),
    Departure(time=1.5, demand_id=0),
    Tick(time=2.25),
    Arrival(time=1e9, demand_id=2 ** 32 - 2),
    Departure(time=1e-9, demand_id=2 ** 32 - 2),
    Tick(time=12345.6789),
]

POLICY_PARAMS = {
    "greedy-threshold": {},
    "dual-gated": {},
    "batch-resolve": {"solver": "greedy", "resolve_every": 8},
    "preempt-density": {"factor": 1.2},
    "preempt-dual-gated": {"penalty": 0.1},
}


def small_trace():
    return generate_trace("line", events=60, process="bursty", seed=11,
                          departure_prob=0.4, tick_every=6.0)


def write_journal(path, events, fmt, *, checkpoint_after=None, state=None):
    with JournalWriter(str(path), header=dict(HEADER), fmt=fmt) as w:
        for i, ev in enumerate(events):
            w.append(ev)
            if checkpoint_after is not None and i + 1 == checkpoint_after:
                w.checkpoint(state or {"position": i + 1})


def deterministic(result):
    from repro.online.metrics import deterministic_metrics

    m = deterministic_metrics(result.metrics)
    m.pop("resumed_at", None)
    return m


class TestCodecRoundTrip:
    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_pinned_corpus_roundtrips(self, tmp_path, fmt):
        path = tmp_path / f"corpus.{fmt}"
        write_journal(path, CORPUS, fmt)
        header, events, good = read_journal(str(path))
        assert header["policy"] == "greedy-threshold"
        assert good == path.stat().st_size
        assert [event_to_dict(ev) for ev in events] == \
            [event_to_dict(ev) for ev in CORPUS]

    def test_formats_decode_identically(self, tmp_path):
        """Same logical stream, two encodings, one decoded result."""
        paths = {}
        for fmt in JOURNAL_FORMATS:
            paths[fmt] = tmp_path / f"twin.{fmt}"
            write_journal(paths[fmt], CORPUS, fmt, checkpoint_after=3,
                          state={"position": 3})
        decoded = {}
        for fmt, path in paths.items():
            header, ckpt, tail, _good, detected = scan_journal(str(path))
            assert detected == fmt
            decoded[fmt] = (header, ckpt,
                            [event_to_dict(ev) for ev in tail])
        assert decoded["jsonl"] == decoded["binary"]

    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_randomized_events_roundtrip(self, tmp_path, fmt):
        rng = random.Random(7)
        events = []
        for i in range(200):
            kind = rng.randrange(3)
            t = rng.uniform(0, 1e6)
            if kind == 0:
                events.append(Arrival(time=t, demand_id=rng.randrange(10 ** 6)))
            elif kind == 1:
                events.append(Departure(time=t, demand_id=rng.randrange(10 ** 6)))
            else:
                events.append(Tick(time=t))
        path = tmp_path / f"rand.{fmt}"
        write_journal(path, events, fmt)
        _header, back, _good = read_journal(str(path))
        assert [event_to_dict(ev) for ev in back] == \
            [event_to_dict(ev) for ev in events]

    def test_binary_smaller_than_jsonl(self, tmp_path):
        trace = small_trace()
        sizes = {}
        for fmt in JOURNAL_FORMATS:
            path = tmp_path / f"size.{fmt}"
            write_journal(path, trace.events, fmt)
            sizes[fmt] = path.stat().st_size
        assert sizes["binary"] < sizes["jsonl"]

    def test_binary_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.journal"
        write_journal(path, CORPUS[:2], "binary")
        raw = bytearray(path.read_bytes())
        raw[4] = 99  # version byte after the 4-byte magic
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="unsupported journal format"):
            read_journal(str(path))


class TestTornTail:
    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_truncation_at_every_byte_of_final_record(self, tmp_path, fmt):
        """Any prefix of the last record is a clean torn tail."""
        full = tmp_path / f"full.{fmt}"
        write_journal(full, CORPUS, fmt)
        prefix = tmp_path / f"prefix.{fmt}"
        write_journal(prefix, CORPUS[:-1], fmt)
        start, end = prefix.stat().st_size, full.stat().st_size
        raw = full.read_bytes()
        want = [event_to_dict(ev) for ev in CORPUS[:-1]]
        for cut in range(start, end):
            torn = tmp_path / f"torn.{fmt}"
            torn.write_bytes(raw[:cut])
            header, events, good = read_journal(str(torn))
            assert header["policy"] == "greedy-threshold", cut
            assert [event_to_dict(ev) for ev in events] == want, cut
            assert good == start, cut

    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_good_bytes_resume_point_reappends(self, tmp_path, fmt):
        """good_bytes of a torn file is a valid start_at for the writer."""
        path = tmp_path / f"resume.{fmt}"
        write_journal(path, CORPUS, fmt)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])  # tear the last record
        _h, events, good = read_journal(str(path))
        assert len(events) == len(CORPUS) - 1
        w = JournalWriter(str(path), start_at=good, seq0=len(events))
        w.append(CORPUS[-1])
        w.close()
        _h, events, _g = read_journal(str(path))
        assert [event_to_dict(ev) for ev in events] == \
            [event_to_dict(ev) for ev in CORPUS]


class TestGroupCommit:
    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_abandon_loses_only_uncommitted_window(self, tmp_path, fmt):
        path = tmp_path / f"gc.{fmt}"
        w = JournalWriter(str(path), header=dict(HEADER), fmt=fmt,
                          sync_window=4)
        for ev in CORPUS:  # 7 events: commit at 4, three pending
            w.append(ev)
        assert w.seq == 7
        assert w.commit_seq == 4
        w.abandon()  # the kill: pending window is lost
        _h, events, _g = read_journal(str(path))
        assert [event_to_dict(ev) for ev in events] == \
            [event_to_dict(ev) for ev in CORPUS[:4]]

    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_close_commits_pending(self, tmp_path, fmt):
        path = tmp_path / f"close.{fmt}"
        with JournalWriter(str(path), header=dict(HEADER), fmt=fmt,
                           sync_window=100) as w:
            for ev in CORPUS:
                w.append(ev)
            assert w.commit_seq == 0
        _h, events, _g = read_journal(str(path))
        assert len(events) == len(CORPUS)

    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_checkpoint_forces_commit(self, tmp_path, fmt):
        path = tmp_path / f"ckpt.{fmt}"
        w = JournalWriter(str(path), header=dict(HEADER), fmt=fmt,
                          sync_window=100)
        for ev in CORPUS[:3]:
            w.append(ev)
        w.checkpoint({"position": 3})
        assert w.commit_seq == 3
        w.abandon()
        _h, ckpt, tail, _g, _f = scan_journal(str(path))
        assert ckpt == {"position": 3}
        assert tail == []

    def test_service_reports_commit_watermark(self, tmp_path):
        trace = small_trace()
        svc = AdmissionService(trace, "greedy-threshold",
                               journal_path=str(tmp_path / "wm.journal"),
                               fmt="binary", sync_window=10)
        resp = svc.handle({"op": "feed", "events": [
            event_to_dict(ev) for ev in trace.events[:5]
        ]})
        assert resp["ok"]
        assert resp["seq"] == 5
        assert resp["commit_seq"] == 0  # accepted, not yet durable
        svc.handle({"op": "feed", "events": [
            event_to_dict(ev) for ev in trace.events[5:12]
        ]})
        assert svc.journal.commit_seq == 10
        svc.close()


class TestBatchedFeed:
    def test_feed_matches_per_event_submit(self, tmp_path):
        trace = small_trace()
        svc_a = AdmissionService(trace, "dual-gated")
        for ev in trace.events:
            svc_a.handle({"op": "submit", "event": event_to_dict(ev)})
        res_a = svc_a.close()

        svc_b = AdmissionService(trace, "dual-gated")
        resp = svc_b.handle({"op": "feed", "events": [
            event_to_dict(ev) for ev in trace.events
        ]})
        assert resp["ok"] and resp["applied"] == len(trace.events)
        res_b = svc_b.close()
        assert deterministic(res_a) == deterministic(res_b)
        assert res_a.admission_log == res_b.admission_log

    def test_bad_record_rejects_whole_batch(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "atomic.journal"
        svc = AdmissionService(trace, "greedy-threshold",
                               journal_path=str(path))
        batch = [event_to_dict(ev) for ev in trace.events[:5]]
        batch.insert(3, {"type": "arrival"})  # missing fields
        resp = svc.handle({"op": "feed", "events": batch})
        assert not resp["ok"]
        assert svc.position == 0  # nothing half-applied
        _h, events, _g = read_journal(str(path))
        assert events == []  # nothing journaled either
        good = svc.handle({"op": "feed",
                           "events": [event_to_dict(ev)
                                      for ev in trace.events[:5]]})
        assert good["ok"] and good["position"] == 5
        svc.close()

    def test_duplicate_arrival_in_batch_rejected(self, tmp_path):
        trace = small_trace()
        svc = AdmissionService(trace, "greedy-threshold")
        first = next(ev for ev in trace.events if isinstance(ev, Arrival))
        doc = event_to_dict(first)
        resp = svc.handle({"op": "feed", "events": [doc, doc]})
        assert not resp["ok"]
        assert svc.position == 0
        svc.close()

    def test_feed_requires_event_list(self):
        trace = small_trace()
        svc = AdmissionService(trace, "greedy-threshold")
        resp = svc.handle({"op": "feed", "events": "nope"})
        assert not resp["ok"]
        svc.close()


class TestCheckpointEquivalence:
    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    @pytest.mark.parametrize("policy", sorted(POLICY_PARAMS))
    def test_kill_resume_with_checkpoints(self, tmp_path, policy, fmt):
        """Killed mid-stream with checkpoints on: resume == straight run."""
        trace = small_trace()
        params = POLICY_PARAMS[policy]
        expected = replay(trace, make_policy(policy, **params))
        for kill_at in (0, 7, 25, 41, len(trace.events)):
            path = tmp_path / f"{policy}-{fmt}-{kill_at}.journal"
            svc = AdmissionService(trace, policy, params,
                                   journal_path=str(path), fmt=fmt,
                                   checkpoint_every=10)
            for ev in trace.events[:kill_at]:
                svc.submit_event(ev)
            del svc  # the kill
            resumed = AdmissionService.resume(str(path))
            assert resumed.position == kill_at
            result = resumed.run_remaining()
            assert deterministic(result) == deterministic(expected)
            assert result.admission_log == expected.admission_log
            assert result.eviction_log == expected.eviction_log
            assert dict(result.policy_stats) == dict(expected.policy_stats)

    @pytest.mark.parametrize("fmt", JOURNAL_FORMATS)
    def test_resume_replays_only_the_tail(self, tmp_path, fmt):
        """The rebuild applies post-checkpoint events only."""
        trace = small_trace()
        path = tmp_path / f"tail.{fmt}"
        svc = AdmissionService(trace, "greedy-threshold",
                               journal_path=str(path), fmt=fmt,
                               checkpoint_every=20)
        for i in range(0, 50, 10):
            svc.feed_events(trace.events[i:i + 10])
        svc.journal.close()
        _h, ckpt, tail, _g, _f = scan_journal(str(path))
        assert ckpt is not None and ckpt["position"] == 40
        assert len(tail) == 10
        resumed = AdmissionService.resume(str(path))
        assert resumed.position == 50
        resumed.run_remaining()

    @pytest.mark.parametrize("src_fmt", JOURNAL_FORMATS)
    @pytest.mark.parametrize("dst_fmt", [None, "jsonl", "binary"])
    def test_compact_preserves_outcome(self, tmp_path, src_fmt, dst_fmt):
        trace = small_trace()
        expected = replay(trace, make_policy("preempt-density", factor=1.2))
        path = tmp_path / f"compact-{src_fmt}-{dst_fmt}.journal"
        svc = AdmissionService(trace, "preempt-density", {"factor": 1.2},
                               journal_path=str(path), fmt=src_fmt)
        svc.feed_events(trace.events[:37])
        svc.journal.close()
        before = path.stat().st_size
        info = AdmissionService.compact(str(path), fmt=dst_fmt)
        assert info["position"] == 37
        assert info["bytes_before"] == before
        _h, ckpt, tail, _g, detected = scan_journal(str(path))
        assert ckpt is not None and tail == []
        assert detected == (dst_fmt or src_fmt)
        resumed = AdmissionService.resume(str(path))
        assert resumed.position == 37
        result = resumed.run_remaining()
        assert deterministic(result) == deterministic(expected)
        assert result.admission_log == expected.admission_log
        assert dict(result.policy_stats) == dict(expected.policy_stats)

    def test_compact_empty_journal_is_header_only(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "empty.journal"
        svc = AdmissionService(trace, "greedy-threshold",
                               journal_path=str(path))
        svc.journal.close()
        info = AdmissionService.compact(str(path))
        assert info["position"] == 0
        resumed = AdmissionService.resume(str(path))
        assert resumed.position == 0
        resumed.run_remaining()


class TestShardedCheckpoint:
    def test_sharded_kill_resume_with_checkpoints(self, tmp_path):
        trace = generate_trace(
            "tree", events=250, process="poisson", seed=5,
            departure_prob=0.3,
            workload={"n": 120, "boundary_fraction": 0.1, "parts": 2},
        )
        path = tmp_path / "sharded.journal"
        svc = AdmissionService(trace, "greedy-threshold", shards=2,
                               journal_path=str(path), fmt="binary",
                               checkpoint_every=40)
        for ev in trace.events[:100]:
            svc.submit_event(ev)
        del svc
        baseline = AdmissionService(trace, "greedy-threshold", shards=2)
        for ev in trace.events:
            baseline.submit_event(ev)
        expected = baseline.close()
        resumed = AdmissionService.resume(str(path))
        assert resumed.position == 100
        result = resumed.run_remaining()
        assert deterministic(result) == deterministic(expected)
        assert result.admission_log == expected.admission_log


class TestDirectoryDurability:
    def test_atomic_dump_fsyncs_directory(self, tmp_path, monkeypatch):
        import repro.io as rio

        synced = []
        real = rio._fsync_dir
        monkeypatch.setattr(rio, "_fsync_dir",
                            lambda d: (synced.append(d), real(d)))
        rio._atomic_dump({"x": 1}, str(tmp_path / "doc.json"))
        assert synced == [str(tmp_path)]

    def test_journal_creation_fsyncs_directory(self, tmp_path, monkeypatch):
        import repro.io as rio

        synced = []
        real = rio._fsync_dir
        monkeypatch.setattr(rio, "_fsync_dir",
                            lambda d: (synced.append(d), real(d)))
        JournalWriter(str(tmp_path / "new.journal"),
                      header=dict(HEADER)).close()
        assert synced == [str(tmp_path)]

    def test_dir_fsync_failure_surfaces_and_keeps_file(self, tmp_path,
                                                       monkeypatch):
        """An injected directory-fsync failure propagates — the caller
        must know durability was NOT achieved — while the data file
        itself (already replaced) stays intact."""
        import repro.io as rio

        path = tmp_path / "doc.json"
        rio._atomic_dump({"v": 1}, str(path))

        def boom(directory):
            raise OSError("injected dir fsync failure")

        monkeypatch.setattr(rio, "_fsync_dir", boom)
        with pytest.raises(OSError, match="injected"):
            rio._atomic_dump({"v": 2}, str(path))
        # The rename happened before the dir fsync: file readable, no
        # temp litter.
        assert json.loads(path.read_text())["v"] == 2
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_file_fsync_failure_preserves_original(self, tmp_path,
                                                   monkeypatch):
        """If the temp file can't be made durable the original survives
        untouched and the temp is cleaned up."""
        import repro.io as rio

        path = tmp_path / "doc.json"
        rio._atomic_dump({"v": 1}, str(path))

        def boom(fd):
            raise OSError("injected file fsync failure")

        monkeypatch.setattr(rio.os, "fsync", boom)
        with pytest.raises(OSError, match="injected"):
            rio._atomic_dump({"v": 2}, str(path))
        assert json.loads(path.read_text())["v"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]
