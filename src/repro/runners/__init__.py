"""Batch experiment execution: parallel runners, caching, benchmarks."""

from .batch import BatchRunner, Job, RunResult
from .hotpath import build_line_case, build_tree_case, run_hotpath_bench
from .replay import ReplayJob, ReplayRunner

__all__ = [
    "BatchRunner",
    "Job",
    "ReplayJob",
    "ReplayRunner",
    "RunResult",
    "build_line_case",
    "build_tree_case",
    "run_hotpath_bench",
]
