"""Command-line interface.

```
python -m repro generate  --kind tree --n 32 --m 24 --r 2 -o problem.json
python -m repro solve     problem.json --algorithm tree-unit --epsilon 0.1
python -m repro compare   problem.json
python -m repro decompose --topology caterpillar --n 32
```

``solve`` prints the solution summary (profit, rounds, λ, the dual
certificate) and optionally writes the solution JSON; ``compare`` runs
the paper's algorithm, the relevant baseline, greedy, and the exact
optimum side by side; ``decompose`` prints the Section 4 decomposition
table for a topology.
"""

from __future__ import annotations

import argparse
import sys

from .core.instance import TreeProblem

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed scheduling on line and tree networks "
                    "(arXiv:1205.1924 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a random problem as JSON")
    gen.add_argument("--kind", choices=["tree", "line"], default="tree")
    gen.add_argument("--n", type=int, default=32,
                     help="vertices (tree) / timeslots (line)")
    gen.add_argument("--m", type=int, default=24, help="demands")
    gen.add_argument("--r", type=int, default=2, help="networks/resources")
    gen.add_argument("--topology", default="random")
    gen.add_argument("--heights", default="unit",
                     choices=["unit", "narrow", "wide", "mixed", "bimodal"])
    gen.add_argument("--profit-ratio", type=float, default=10.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)

    sol = sub.add_parser("solve", help="solve a problem JSON")
    sol.add_argument("problem")
    sol.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "tree-unit", "tree-arbitrary", "line-unit",
                 "line-arbitrary", "ps-line", "sequential", "greedy", "exact"],
    )
    sol.add_argument("--epsilon", type=float, default=0.1)
    sol.add_argument("--seed", type=int, default=0)
    sol.add_argument("--mis", default="luby",
                     choices=["luby", "greedy", "priority"])
    sol.add_argument("--save-solution", default=None)

    cmp_ = sub.add_parser("compare", help="run algorithms side by side")
    cmp_.add_argument("problem")
    cmp_.add_argument("--epsilon", type=float, default=0.1)
    cmp_.add_argument("--seed", type=int, default=0)

    dec = sub.add_parser("decompose",
                         help="Section 4 decomposition table for a topology")
    dec.add_argument("--topology", default="random")
    dec.add_argument("--n", type=int, default=32)
    dec.add_argument("--seed", type=int, default=0)
    return p


def _generate(args) -> int:
    from .io import save_problem
    from .workloads import random_line_problem, random_tree_problem

    if args.kind == "tree":
        problem = random_tree_problem(
            n=args.n, m=args.m, r=args.r, topology=args.topology,
            seed=args.seed, profit_ratio=args.profit_ratio,
            height_regime=args.heights,
        )
    else:
        problem = random_line_problem(
            n_slots=args.n, m=args.m, r=args.r, seed=args.seed,
            profit_ratio=args.profit_ratio, height_regime=args.heights,
        )
    save_problem(problem, args.output)
    print(f"wrote {args.kind} problem ({args.m} demands, {args.r} networks) "
          f"to {args.output}")
    return 0


def _pick_algorithm(problem, name: str):
    from . import algorithms as alg

    is_tree = isinstance(problem, TreeProblem)
    if name == "auto":
        if is_tree:
            name = "tree-unit" if problem.unit_height else "tree-arbitrary"
        else:
            name = "line-unit" if problem.unit_height else "line-arbitrary"
    table = {
        "tree-unit": (alg.solve_tree_unit, True),
        "tree-arbitrary": (alg.solve_tree_arbitrary, True),
        "sequential": (alg.solve_sequential_tree, True),
        "line-unit": (alg.solve_line_unit, False),
        "line-arbitrary": (alg.solve_line_arbitrary, False),
        "ps-line": (alg.solve_ps_line_unit, False),
        "greedy": (alg.solve_greedy, None),
        "exact": (alg.solve_optimal, None),
    }
    fn, wants_tree = table[name]
    if wants_tree is True and not is_tree:
        raise SystemExit(f"{name} needs a tree problem")
    if wants_tree is False and is_tree:
        raise SystemExit(f"{name} needs a line problem")
    return name, fn


def _solve(args) -> int:
    from .core.solution import verify_line_solution, verify_tree_solution
    from .io import load_problem, save_solution
    from .report import render_solution_summary

    problem = load_problem(args.problem)
    name, fn = _pick_algorithm(problem, args.algorithm)
    kwargs = {}
    if name in ("tree-unit", "tree-arbitrary", "line-unit", "line-arbitrary",
                "ps-line"):
        kwargs = dict(epsilon=args.epsilon, seed=args.seed, mis=args.mis)
    sol = fn(problem, **kwargs)
    if isinstance(problem, TreeProblem):
        verify_tree_solution(problem, sol, unit_height=False)
    else:
        verify_line_solution(problem, sol, unit_height=False)
    print(render_solution_summary(sol))
    if args.save_solution:
        save_solution(sol, args.save_solution)
        print(f"solution written to {args.save_solution}")
    return 0


def _compare(args) -> int:
    from . import algorithms as alg
    from .io import load_problem
    from .report import render_comparison

    problem = load_problem(args.problem)
    entries = []
    if isinstance(problem, TreeProblem):
        entries.append((
            "tree-arbitrary (80+ε)" if not problem.unit_height
            else "tree-unit (7+ε)",
            (alg.solve_tree_arbitrary if not problem.unit_height
             else alg.solve_tree_unit)(problem, epsilon=args.epsilon,
                                       seed=args.seed),
        ))
        entries.append(("sequential (App. A)", alg.solve_sequential_tree(problem)))
    else:
        entries.append((
            "line-arbitrary (23+ε)" if not problem.unit_height
            else "line-unit (4+ε)",
            (alg.solve_line_arbitrary if not problem.unit_height
             else alg.solve_line_unit)(problem, epsilon=args.epsilon,
                                       seed=args.seed),
        ))
        entries.append((
            "Panconesi–Sozio",
            (alg.solve_ps_line_arbitrary if not problem.unit_height
             else alg.solve_ps_line_unit)(problem, epsilon=args.epsilon,
                                          seed=args.seed),
        ))
    entries.append(("greedy (density)", alg.solve_greedy(problem)))
    opt = alg.solve_optimal(problem)
    print(render_comparison(entries, opt=opt.profit))
    return 0


def _decompose(args) -> int:
    from .decomposition import (
        balancing_decomposition,
        ideal_decomposition,
        root_fixing_decomposition,
    )
    from .report import render_decomposition
    from .workloads import make_tree

    tree = make_tree(args.n, args.topology, seed=args.seed)
    print(f"{args.topology} tree on {args.n} vertices")
    print(f"{'construction':<14}{'depth':>7}{'pivot θ':>9}")
    print("-" * 30)
    for name, builder in [("root-fixing", root_fixing_decomposition),
                          ("balancing", balancing_decomposition),
                          ("ideal", ideal_decomposition)]:
        td = builder(tree)
        print(f"{name:<14}{td.max_depth:>7}{td.pivot_size:>9}")
    print()
    print(render_decomposition(ideal_decomposition(tree)))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _generate,
        "solve": _solve,
        "compare": _compare,
        "decompose": _decompose,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
