"""Tests for the (trace × policy × seed) replay runner."""

from __future__ import annotations

import pytest

from repro.io import save_trace, trace_to_dict
from repro.online import poisson_trace
from repro.report import render_sweep
from repro.runners import ReplayJob, ReplayRunner


@pytest.fixture(scope="module")
def trace():
    return poisson_trace("line", events=80, seed=1, departure_prob=0.3)


@pytest.fixture(scope="module")
def trace_doc(trace):
    return trace_to_dict(trace)


POLICY_GRID = ["greedy-threshold", "dual-gated", "batch-resolve",
               "preempt-density", "preempt-dual-gated"]


class TestReplayRunner:
    def test_grid_inline(self, trace_doc):
        runner = ReplayRunner(processes=1)
        results = runner.run_grid([trace_doc], POLICY_GRID, seeds=[0, 1])
        assert len(results) == 10
        assert all(r.error is None for r in results)
        assert {r.solver for r in results} == set(POLICY_GRID)
        for r in results:
            assert r.stats["accepted"] == r.size
            assert r.stats["events"] == 80
            # Realized profit stays forfeit-corrected through the runner.
            assert r.stats["penalty_adjusted_profit"] == pytest.approx(
                r.stats["realized_profit"] - r.stats["penalty_paid"]
            )

    def test_results_deterministic(self, trace_doc):
        runner = ReplayRunner(processes=1)
        a = runner.run([ReplayJob(trace=trace_doc, policy="dual-gated")])
        b = runner.run([ReplayJob(trace=trace_doc, policy="dual-gated")])
        assert a[0].profit == b[0].profit
        assert a[0].size == b[0].size

    def test_cache_round_trip(self, trace_doc, tmp_path):
        runner = ReplayRunner(processes=1, cache_dir=str(tmp_path))
        job = ReplayJob(trace=trace_doc, policy="greedy-threshold")
        first = runner.run([job])
        second = runner.run([job])
        assert not first[0].cache_hit
        assert second[0].cache_hit
        assert second[0].profit == first[0].profit

    def test_trace_from_file(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        runner = ReplayRunner(processes=1)
        results = runner.run([ReplayJob(trace=str(path),
                                        policy="greedy-threshold")])
        assert results[0].error is None
        assert results[0].label == "trace"

    def test_offline_benchmark_injected(self, trace_doc):
        runner = ReplayRunner(processes=1, offline="greedy")
        results = runner.run_grid([trace_doc], ["greedy-threshold",
                                                "dual-gated"])
        for r in results:
            assert r.stats["offline_profit"] is not None
            assert r.stats["competitive_ratio"] is not None
        table = render_sweep(results)
        assert "ALG/OPT" in table and "c-ratio" in table

    def test_offline_config_changes_cache_key(self, trace_doc, tmp_path):
        plain = ReplayRunner(processes=1, cache_dir=str(tmp_path))
        with_opt = ReplayRunner(processes=1, cache_dir=str(tmp_path),
                                offline="greedy")
        job = ReplayJob(trace=trace_doc, policy="dual-gated")
        plain.run([job])
        res = with_opt.run([job])
        # Not served from the offline-less cache entry.
        assert not res[0].cache_hit
        assert res[0].stats["offline_profit"] is not None

    def test_cached_sweep_skips_offline_solve(self, trace_doc, tmp_path):
        runner = ReplayRunner(processes=1, cache_dir=str(tmp_path),
                              offline="greedy")
        job = ReplayJob(trace=trace_doc, policy="dual-gated")
        runner.run([job])
        fresh = ReplayRunner(processes=1, cache_dir=str(tmp_path),
                             offline="greedy")
        res = fresh.run([job])
        assert res[0].cache_hit
        # The benchmark is lazy: an all-hit run never solves offline.
        assert fresh._offline_profits_by_trace == {}

    def test_error_recorded_not_raised(self, trace_doc):
        runner = ReplayRunner(processes=1)
        results = runner.run([ReplayJob(trace=trace_doc, policy="oracle")])
        assert results[0].error is not None
        assert "unknown policy" in results[0].error

    def test_bad_policy_kwargs_recorded_friendly(self, trace_doc):
        runner = ReplayRunner(processes=1)
        results = runner.run([ReplayJob(trace=trace_doc,
                                        policy="preempt-density",
                                        params={"factr": 2.0})])
        assert results[0].error is not None
        assert "bad parameters for policy" in results[0].error

    def test_preemptive_grid_renders_side_by_side(self, trace_doc):
        runner = ReplayRunner(processes=1, offline="greedy")
        results = runner.run_grid(
            [trace_doc], ["greedy-threshold", "preempt-density"]
        )
        assert all(r.error is None for r in results)
        table = render_sweep(results)
        # Non-preemptive and preemptive competitive ratios side by side,
        # with the eviction columns present for both rows.
        assert "c-ratio" in table and "evict" in table
        assert "adj profit" in table

    def test_seed_reaches_batch_resolve_solver(self, trace_doc):
        runner = ReplayRunner(processes=1)
        job = ReplayJob(
            trace=trace_doc, policy="batch-resolve",
            params={"solver": "line-arbitrary", "resolve_every": 16},
            seed=3,
        )
        res = runner.run([job])
        assert res[0].error is None
        assert res[0].params["seed"] == 3

    def test_parallel_pool_matches_inline(self, trace_doc):
        inline = ReplayRunner(processes=1).run_grid(
            [trace_doc], POLICY_GRID
        )
        pooled = ReplayRunner(processes=2).run_grid(
            [trace_doc], POLICY_GRID
        )
        assert [(r.solver, r.profit, r.size) for r in inline] == \
               [(r.solver, r.profit, r.size) for r in pooled]
