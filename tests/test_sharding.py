"""Tests for the sharded admission engine (planner, ledger, driver).

The load-bearing guarantees:

* the planner emits a true edge *partition* and classifies demands
  correctly (local ⇔ every instance route inside one shard);
* ``shards=1`` is event-for-event identical to the single-ledger driver
  (byte-identical deterministic outcome) for every registered policy;
* multi-shard runs stay feasible (coordinator-verified) and diverge
  from the unsharded replay by at most the planner's boundary bound on
  the pinned corpus;
* pool and inline phase-A execution decide identically.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.io import load_trace
from repro.online import generate_trace, make_policy, replay
from repro.online.metrics import deterministic_metrics as _deterministic
from repro.sharding import (
    ShardedDriver,
    ShardedLedger,
    ShardPlanner,
)
from repro.workloads import random_line_problem, random_tree_problem

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: The corpus policy grid (mirrors tests/make_trace_corpus.py).
POLICIES = [
    ("greedy-threshold", {}),
    ("dual-gated", {}),
    ("batch-resolve", {"solver": "greedy", "resolve_every": 32}),
    ("preempt-density", {"factor": 1.2}),
    ("preempt-dual-gated", {"penalty": 0.1}),
]


@pytest.fixture(scope="module")
def tree_trace():
    return load_trace(str(DATA_DIR / "trace_poisson_tree.json"))


@pytest.fixture(scope="module")
def line_trace():
    return load_trace(str(DATA_DIR / "trace_bursty_line.json"))


class TestShardPlanner:
    @pytest.mark.parametrize("by", ["subtree", "layer"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_tree_plan_invariants(self, tree_trace, by, shards):
        problem = tree_trace.problem
        plan = ShardPlanner(by).plan(problem, shards)
        # Every edge of every network is owned by exactly one shard.
        for q, net in enumerate(problem.networks):
            for ek in net.iter_edges():
                assert 0 <= plan.edge_shard[(q, ek)] < shards
        # Demand classification matches the instance routes exactly.
        for inst in problem.instances():
            owners = {plan.edge_shard[ge]
                      for ge in problem.global_edges_of(inst)}
            d = inst.demand_id
            assert owners <= set(plan.shards_of(d))
        for d in range(problem.num_demands):
            if plan.is_boundary(d):
                assert len(plan.shards_of(d)) > 1
            else:
                assert len(plan.shards_of(d)) == 1
        # Local demand lists partition the non-boundary demands.
        locals_flat = [d for ids in plan.shard_demands for d in ids]
        assert sorted(locals_flat + plan.boundary_demands) == list(
            range(problem.num_demands)
        )

    def test_line_plan_blocks(self, line_trace):
        problem = line_trace.problem
        plan = ShardPlanner("layer").plan(problem, 3)
        # Contiguous blocks: shard is monotone in the timeslot.
        shards_by_slot = [plan.edge_shard[(0, t)]
                          for t in range(problem.n_slots)]
        assert shards_by_slot == sorted(shards_by_slot)
        assert set(shards_by_slot) == {0, 1, 2}

    def test_subproblem_and_subtrace_align(self, tree_trace):
        plan = ShardPlanner("subtree").plan(tree_trace.problem, 2)
        for s in range(2):
            sub = plan.subproblem(s)
            assert sub.num_demands == len(plan.shard_demands[s])
            # Demands keep their profit/endpoints under renumbering.
            for i, d in enumerate(plan.shard_demands[s]):
                assert sub.demands[i].profit == \
                    tree_trace.problem.demands[d].profit
            # Sub-trace construction re-validates the event stream.
            st = plan.subtrace(s, tree_trace)
            assert st.num_arrivals == sub.num_demands
            assert st.meta["shard"] == s
        # Boundary events cover exactly the cut-crossing demands.
        boundary = plan.boundary_events(tree_trace)
        seen = {ev.demand_id for ev in boundary if hasattr(ev, "demand_id")}
        assert seen == set(plan.boundary_demands)

    def test_instance_map_roundtrip(self, tree_trace):
        problem = tree_trace.problem
        plan = ShardPlanner("subtree").plan(problem, 2)
        for s in range(2):
            sub = plan.subproblem(s)
            for inst in sub.instances():
                g = plan.global_instance_of(s, inst.instance_id)
                ginst = problem.instances()[g]
                assert ginst.network_id == inst.network_id
                assert ginst.profit == inst.profit
                assert plan.shard_demands[s][inst.demand_id] == \
                    ginst.demand_id

    def test_more_shards_than_vertices(self):
        problem = random_tree_problem(n=6, m=8, r=1, seed=0)
        plan = ShardPlanner("subtree").plan(problem, 16)
        locals_flat = [d for ids in plan.shard_demands for d in ids]
        assert sorted(locals_flat + plan.boundary_demands) == list(range(8))

    def test_bad_inputs(self):
        with pytest.raises(ValueError, match="unknown shard strategy"):
            ShardPlanner("random")
        problem = random_line_problem(n_slots=32, m=4, seed=0)
        with pytest.raises(ValueError, match="shards must be"):
            ShardPlanner().plan(problem, 0)

    def test_summary_bounds(self, tree_trace):
        plan = ShardPlanner("subtree").plan(tree_trace.problem, 4)
        summary = plan.summary()
        assert summary["boundary_demands"] == plan.boundary_count
        assert summary["boundary_profit"] == pytest.approx(
            sum(tree_trace.problem.demands[d].profit
                for d in plan.boundary_demands)
        )
        assert sum(summary["edges_per_shard"]) == len(plan.edge_shard)


class TestShardOneEquivalence:
    """``shards=1``: byte-identical to the single-ledger driver."""

    @pytest.mark.parametrize("policy,params", POLICIES,
                             ids=[p for p, _ in POLICIES])
    def test_tree_trace_identical(self, tree_trace, policy, params):
        direct = replay(tree_trace, make_policy(policy, **params))
        sharded = ShardedDriver(1, "subtree").run(tree_trace, policy, params)
        shard0 = sharded.shard_results[0]
        assert shard0.admission_log == direct.admission_log
        assert shard0.eviction_log == direct.eviction_log
        assert shard0.policy_stats == direct.policy_stats
        # The deterministic projections agree byte for byte.
        assert json.dumps(_deterministic(shard0.metrics), sort_keys=True) \
            == json.dumps(_deterministic(direct.metrics), sort_keys=True)
        # Merged counters echo the single shard exactly.
        for field in ("accepted", "rejected", "evictions",
                      "realized_profit", "forfeited_profit",
                      "penalty_paid", "penalty_adjusted_profit",
                      "acceptance_ratio", "dual_upper_bound"):
            assert getattr(sharded.merged, field) == \
                getattr(direct.metrics, field)
        assert sharded.boundary_result is None
        assert sorted(i.instance_id
                      for i in sharded.merged_solution.selected) == \
            sorted(i.instance_id for i in direct.final_solution.selected)

    def test_line_trace_identical(self, line_trace):
        direct = replay(line_trace, make_policy("greedy-threshold"))
        sharded = ShardedDriver(1, "layer").run(
            line_trace, "greedy-threshold", {}
        )
        assert sharded.shard_results[0].admission_log == \
            direct.admission_log
        assert sharded.merged.realized_profit == \
            direct.metrics.realized_profit


class TestMultiShard:
    @pytest.mark.parametrize("by", ["subtree", "layer"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_divergence_within_boundary_bound(self, tree_trace, by, shards):
        """On the pinned corpus, sharded profit/acceptance stays within
        the planner's boundary-demand population of the unsharded
        replay, and the merged admitted set re-verifies from first
        principles (the driver runs the coordinator's ``verify()`` when
        ``verify=True``).

        This is an empirical change-detection property of the *pinned*
        corpus (deterministic), not a theorem: knock-on effects through
        local demands can exceed the boundary profit on adversarial
        traces — see the planner module docstring."""
        direct = replay(tree_trace, make_policy("greedy-threshold"))
        res = ShardedDriver(shards, by).run(
            tree_trace, "greedy-threshold", {}
        )
        bound_profit = res.plan["boundary_profit"]
        bound_count = res.plan["boundary_demands"]
        assert abs(res.merged.penalty_adjusted_profit
                   - direct.metrics.penalty_adjusted_profit) \
            <= bound_profit + 1e-9
        assert abs(res.merged.accepted - direct.metrics.accepted) \
            <= bound_count
        assert res.merged.events == len(tree_trace.events)
        assert res.merged.arrivals == tree_trace.num_arrivals

    @pytest.mark.parametrize("policy,params", POLICIES,
                             ids=[p for p, _ in POLICIES])
    def test_all_policies_run_sharded(self, tree_trace, policy, params):
        """Every registered policy runs unmodified inside shards and in
        the boundary broker; the merged set stays verified-feasible."""
        res = ShardedDriver(2, "subtree").run(tree_trace, policy, params)
        assert len(res.shard_results) == 2
        assert res.merged.accepted >= 0
        # Merged profit decomposes exactly into shard + boundary rows.
        parts = [r.metrics.realized_profit for r in res.shard_results]
        if res.boundary_result is not None:
            parts.append(res.boundary_result.metrics.realized_profit)
        assert res.merged.realized_profit == pytest.approx(sum(parts))

    def test_pool_matches_inline(self):
        trace = generate_trace("tree", events=400, process="poisson",
                               seed=7, departure_prob=0.3,
                               workload={"n": 96, "locality": 0.1})
        inline = ShardedDriver(2, "subtree", processes=0).run(
            trace, "dual-gated", {}
        )
        pooled = ShardedDriver(2, "subtree", processes=2).run(
            trace, "dual-gated", {}
        )
        for a, b in zip(inline.shard_results, pooled.shard_results):
            assert a.admission_log == b.admission_log
            assert json.dumps(_deterministic(a.metrics), sort_keys=True) \
                == json.dumps(_deterministic(b.metrics), sort_keys=True)
        assert inline.merged.realized_profit == \
            pooled.merged.realized_profit

    def test_line_trace_sharded(self, line_trace):
        res = ShardedDriver(3, "layer").run(
            line_trace, "greedy-threshold", {}
        )
        assert res.merged.accepted > 0
        direct = replay(line_trace, make_policy("greedy-threshold"))
        assert abs(res.merged.realized_profit
                   - direct.metrics.realized_profit) \
            <= res.plan["boundary_profit"] + 1e-9

    def test_sharded_dual_certificate_bounds_offline(self, tree_trace):
        """The broker's coordinator certificate upper-bounds the global
        offline optimum even in a multi-shard run."""
        from repro.online import offline_optimum

        res = ShardedDriver(2, "subtree").run(tree_trace, "dual-gated", {})
        assert res.merged.dual_upper_bound is not None
        opt = offline_optimum(tree_trace, "exact")
        assert res.merged.dual_upper_bound >= opt - 1e-6


class TestShardedLedger:
    def test_local_routing_mirrors_coordinator(self, tree_trace):
        plan = ShardPlanner("subtree").plan(tree_trace.problem, 2)
        sl = ShardedLedger(tree_trace.problem, plan)
        # Admit one local demand from each shard through the router.
        admitted = []
        for s in range(2):
            for d in plan.shard_demands[s]:
                gid = sl.try_admit(d)
                if gid is not None:
                    admitted.append((s, d, gid))
                    break
        assert admitted, "no local demand admitted"
        for s, d, gid in admitted:
            local = plan.shard_demands[s].index(d)
            assert sl.shard_ledger(s).is_admitted(local)
            assert sl.coordinator.is_admitted(d)
        sl.verify()
        # Releases clear both views.
        for s, d, gid in admitted:
            sl.release(d)
        assert sl.num_admitted == 0
        for s, d, gid in admitted:
            assert not sl.shard_ledger(s).is_admitted(
                plan.shard_demands[s].index(d)
            )

    def test_boundary_goes_through_coordinator_only(self, tree_trace):
        plan = ShardPlanner("subtree").plan(tree_trace.problem, 2)
        if not plan.boundary_demands:
            pytest.skip("plan has no boundary demand")
        sl = ShardedLedger(tree_trace.problem, plan)
        d = plan.boundary_demands[0]
        gid = sl.try_admit(d)
        assert gid is not None
        assert sl.coordinator.is_admitted(d)

    def test_two_phase_commit_withdraws_on_conflict(self, tree_trace):
        """A boundary holder on a local route makes the coordinator
        refuse the mirror; the tentative shard admission is withdrawn."""
        plan = ShardPlanner("subtree").plan(tree_trace.problem, 2)
        problem = tree_trace.problem
        # Find a boundary demand sharing an edge with a local demand.
        edges_of_demand = {}
        for inst in problem.instances():
            edges_of_demand.setdefault(inst.demand_id, set()).update(
                problem.global_edges_of(inst)
            )
        pair = None
        for b in plan.boundary_demands:
            for s in range(2):
                for d in plan.shard_demands[s]:
                    if edges_of_demand[b] & edges_of_demand[d]:
                        pair = (b, s, d)
                        break
                if pair:
                    break
            if pair:
                break
        if pair is None:
            pytest.skip("no boundary/local edge overlap in this corpus")
        b, s, d = pair
        sl = ShardedLedger(problem, plan)
        assert sl.try_admit(b) is not None  # boundary demand holds edges
        local = plan.shard_demands[s].index(d)
        before = sl.shard_ledger(s).num_admitted
        gid = sl.try_admit(d)
        if gid is None:
            # Refused: the shard view must have been rolled back cleanly.
            assert sl.shard_ledger(s).num_admitted == before
            assert not sl.shard_ledger(s).was_admitted(local)
        else:
            # Heights permitted coexistence; both views agree.
            assert sl.coordinator.is_admitted(d)
        sl.verify()
