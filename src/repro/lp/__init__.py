"""LP formulation of the throughput maximization problem."""

from .model import PackingLP, build_lp

__all__ = ["PackingLP", "build_lp"]
