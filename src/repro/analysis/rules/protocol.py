"""Protocol drift: the wire contract must match everywhere it is stated.

The line protocol is defined in three places that can rot apart: the
``AdmissionService._handle_op`` dispatcher (request ops and response
keys), the transports (``async_server.py`` pushes its own
``shutdown`` notification), and README's protocol table — the only
copy clients read.  This rule extracts all three statically and
cross-checks:

* the README table's op set must equal the dispatcher's ops plus the
  server-pushed ops;
* per op, the statically visible response keys must agree with the
  table — exactly for closed dict literals, as a subset for branches
  that splat dynamic payloads (``**self.query(...)``).

A missing README table is itself a finding: the contract must be
written down where clients can see it.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..base import Fixture, ProjectContext, Rule, const_str, register
from ..findings import Finding

__all__ = ["ProtocolDriftRule"]

#: Keys any response may carry regardless of op (the request-id echo).
_UNIVERSAL_KEYS = {"id"}


def _dispatcher_ops(tree: ast.Module):
    """(op -> branch body) from ``_handle_op``'s if-chain."""
    fn = None
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_handle_op":
            fn = node
            break
    if fn is None:
        return {}
    branches: dict = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "op"
                and len(test.ops) == 1):
            continue
        comp = test.comparators[0]
        ops_here = []
        if isinstance(test.ops[0], ast.Eq):
            text = const_str(comp)
            if text is not None:
                ops_here.append(text)
        elif isinstance(test.ops[0], ast.In) and \
                isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
            for elt in comp.elts:
                text = const_str(elt)
                if text is not None:
                    ops_here.append(text)
        for op in ops_here:
            branches[op] = node.body
    return branches


def _branch_response_keys(body):
    """(keys, open): response-dict keys a branch can emit.

    ``open`` is True when the branch splats a dynamic payload, so the
    static keys are a lower bound rather than the whole story.
    """
    keys: set = set()
    open_ = False
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Dict):
                for k in node.keys:
                    if k is None:
                        open_ = True
                        continue
                    text = const_str(k)
                    if text is not None:
                        keys.add(text)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Subscript):
                        text = const_str(t.slice)
                        if text is not None:
                            keys.add(text)
    return keys, open_


def _emitted_ops(tree: ast.Module):
    """Op values the transport itself stamps into response dicts."""
    ops = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for k, v in zip(node.keys, node.values):
            if k is not None and const_str(k) == "op":
                text = const_str(v)
                if text is not None:
                    ops.add(text)
    return ops


def _parse_readme_table(text: str):
    """(op -> (line, response_keys), table_found) from the README."""
    rows: dict = {}
    in_table = False
    found = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_table = False
            continue
        cells = [c.strip().strip("`").strip()
                 for c in stripped.strip("|").split("|")]
        if not cells:
            continue
        if cells[0].lower() == "op":
            in_table = True
            found = True
            continue
        if not in_table:
            continue
        if set(cells[0]) <= {"-", ":", " "}:
            continue
        op = cells[0]
        resp = cells[-1] if len(cells) >= 2 else ""
        keys = {k.strip().strip("`").strip()
                for k in resp.split(",") if k.strip().strip("`").strip()}
        rows[op] = (lineno, keys)
    return rows, found


@register
class ProtocolDriftRule(Rule):
    id = "PROTO001"
    name = "protocol-drift"
    rationale = (
        "The wire protocol lives in three places — the service "
        "dispatcher, the transports, and README's protocol table (the "
        "only copy clients read).  They drift independently: an op "
        "added to the dispatcher but not the table is invisible to "
        "clients; a documented response key the code never emits sends "
        "clients parsing fiction.  The rule extracts ops and response "
        "keys from the code and diffs them against the table."
    )
    scope = "project"
    default_path = "service/service.py"
    fixtures = [
        Fixture(
            bad={
                "service/service.py": (
                    "class Service:\n"
                    "    def _handle_op(self, req):\n"
                    "        op = req.get('op')\n"
                    "        if op == 'stats':\n"
                    "            return {'ok': True, 'op': op, "
                    "'stats': self.stats()}\n"
                    "        if op == 'drain':\n"
                    "            return {'ok': True, 'op': op}\n"
                ),
                "README.md": (
                    "## Protocol\n"
                    "\n"
                    "| op | response keys |\n"
                    "|----|---------------|\n"
                    "| `stats` | `ok`, `op`, `stats` |\n"
                ),
            },
            good={
                "service/service.py": (
                    "class Service:\n"
                    "    def _handle_op(self, req):\n"
                    "        op = req.get('op')\n"
                    "        if op == 'stats':\n"
                    "            return {'ok': True, 'op': op, "
                    "'stats': self.stats()}\n"
                    "        if op == 'drain':\n"
                    "            return {'ok': True, 'op': op}\n"
                ),
                "README.md": (
                    "## Protocol\n"
                    "\n"
                    "| op | response keys |\n"
                    "|----|---------------|\n"
                    "| `stats` | `ok`, `op`, `stats` |\n"
                    "| `drain` | `ok`, `op` |\n"
                ),
            },
            note="the dispatcher grew a 'drain' op the README table "
                 "never documented",
        ),
    ]

    def check_project(self, ctx: ProjectContext):
        services = ctx.find("service/service.py") or ctx.find("service.py")
        if not services:
            return
        service = services[0]
        branches = _dispatcher_ops(service.tree)
        if not branches:
            return
        emitted: set = set()
        async_files = (ctx.find("service/async_server.py")
                       or ctx.find("async_server.py"))
        for pf in async_files:
            emitted |= _emitted_ops(pf.tree)
        emitted -= set(branches)

        readme_path = None
        readme_text = None
        for parent in Path(service.path).parents:
            candidate = parent / "README.md"
            text = ctx.read_text(candidate)
            if text is not None:
                readme_path, readme_text = candidate, text
                break
        if readme_text is None:
            yield Finding(
                path=str(service.path), line=1, col=0, rule=self.id,
                message="no README.md found above the service module; the "
                        "protocol table must be documented",
            )
            return
        rows, found = _parse_readme_table(readme_text)
        if not found:
            yield Finding(
                path=str(readme_path), line=1, col=0, rule=self.id,
                message="README has no protocol table (a markdown table "
                        "whose first header cell is 'op')",
            )
            return

        expected = set(branches) | emitted
        for op in sorted(expected - set(rows)):
            where = "dispatcher" if op in branches else "server-pushed"
            yield Finding(
                path=str(readme_path), line=1, col=0, rule=self.id,
                message=(f"op {op!r} ({where}) is missing from README's "
                         "protocol table"),
            )
        for op in sorted(set(rows) - expected):
            line, _ = rows[op]
            yield Finding(
                path=str(readme_path), line=line, col=0, rule=self.id,
                message=(f"README documents op {op!r} but neither the "
                         "dispatcher nor a transport implements it"),
            )
        for op, body in sorted(branches.items()):
            if op not in rows:
                continue
            line, doc_keys = rows[op]
            static_keys, open_ = _branch_response_keys(body)
            if not doc_keys:
                continue
            missing = static_keys - doc_keys - _UNIVERSAL_KEYS
            for key in sorted(missing):
                yield Finding(
                    path=str(readme_path), line=line, col=0, rule=self.id,
                    message=(f"op {op!r} emits response key {key!r} the "
                             "README table does not document"),
                )
            if not open_:
                phantom = doc_keys - static_keys - _UNIVERSAL_KEYS
                for key in sorted(phantom):
                    yield Finding(
                        path=str(readme_path), line=line, col=0,
                        rule=self.id,
                        message=(f"README documents response key {key!r} "
                                 f"for op {op!r} but the dispatcher never "
                                 "emits it"),
                    )
