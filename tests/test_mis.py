"""Tests for the MIS primitives (Luby simulation + greedy reference)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.mis import greedy_mis, is_maximal_independent_set, luby_mis


def random_graph(n: int, p: float, seed: int) -> dict[int, set]:
    rng = np.random.default_rng(seed)
    adj: dict[int, set] = {v: set() for v in range(n)}
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                adj[a].add(b)
                adj[b].add(a)
    return adj


class TestLuby:
    @pytest.mark.parametrize("seed", range(5))
    def test_produces_mis(self, seed):
        adj = random_graph(60, 0.1, seed)
        mis, rounds = luby_mis(adj, np.random.default_rng(seed))
        assert is_maximal_independent_set(adj, mis)
        assert rounds >= 1

    def test_empty_graph(self):
        mis, rounds = luby_mis({}, np.random.default_rng(0))
        assert mis == set() and rounds == 0

    def test_no_edges_all_join(self):
        adj = {v: set() for v in range(10)}
        mis, rounds = luby_mis(adj, np.random.default_rng(0))
        assert mis == set(range(10))
        assert rounds == 1

    def test_clique_one_survivor(self):
        adj = {v: set(range(5)) - {v} for v in range(5)}
        mis, _ = luby_mis(adj, np.random.default_rng(1))
        assert len(mis) == 1

    def test_rounds_logarithmic_on_average(self):
        # Luby terminates in O(log N) rounds w.h.p.; sanity-check the
        # constant is civilised on a 300-vertex random graph.
        adj = random_graph(300, 0.05, 7)
        rounds = [luby_mis(adj, np.random.default_rng(s))[1] for s in range(10)]
        assert max(rounds) <= 40

    def test_deterministic_given_seed(self):
        adj = random_graph(40, 0.2, 3)
        a, _ = luby_mis(adj, np.random.default_rng(42))
        b, _ = luby_mis(adj, np.random.default_rng(42))
        assert a == b


class TestGreedy:
    @pytest.mark.parametrize("seed", range(5))
    def test_produces_mis(self, seed):
        adj = random_graph(60, 0.1, seed)
        mis, rounds = greedy_mis(adj)
        assert is_maximal_independent_set(adj, mis)
        assert rounds == 1

    def test_lexicographically_first(self):
        # Path 0-1-2-3: greedy by id takes {0, 2}.
        adj = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        mis, _ = greedy_mis(adj)
        assert mis == {0, 2}

    def test_custom_priority(self):
        adj = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        mis, _ = greedy_mis(adj, priority=lambda v: -v)
        assert mis == {3, 1}


@given(
    n=st.integers(min_value=1, max_value=40),
    p=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_both_backends_yield_mis(n, p, seed):
    adj = random_graph(n, p, seed)
    for mis, _ in (
        luby_mis(adj, np.random.default_rng(seed)),
        greedy_mis(adj),
    ):
        assert is_maximal_independent_set(adj, mis)
