"""Tests for the Section 4 tree decompositions.

The validators in :mod:`repro.decomposition.validate` re-check the
defining properties from scratch; the bounds asserted here are the ones
Lemma 4.1 and Section 4.2 state.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    balancing_decomposition,
    ideal_decomposition,
    make_tree,
    root_fixing_decomposition,
)
from repro.decomposition.validate import (
    brute_force_chi,
    check_pivot_sets,
    check_tree_decomposition,
)
from repro.workloads import TREE_TOPOLOGIES

ALL_BUILDERS = [root_fixing_decomposition, balancing_decomposition, ideal_decomposition]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
@pytest.mark.parametrize("topology", TREE_TOPOLOGIES)
def test_valid_decomposition_every_topology(builder, topology):
    t = make_tree(31, topology, seed=5)
    td = builder(t)
    check_tree_decomposition(td)
    check_pivot_sets(td)


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_single_vertex_tree(builder):
    td = builder(make_tree(1, "path"))
    assert td.max_depth == 1
    assert td.pivot_size == 0


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_two_vertex_tree(builder):
    td = builder(make_tree(2, "path"))
    check_tree_decomposition(td)
    assert td.max_depth == 2


class TestRootFixing:
    def test_pivot_is_one(self):
        for topology in TREE_TOPOLOGIES:
            t = make_tree(25, topology, seed=1)
            td = root_fixing_decomposition(t)
            assert td.pivot_size <= 1

    def test_depth_is_tree_height(self):
        t = make_tree(20, "path")
        td = root_fixing_decomposition(t, root=0)
        assert td.max_depth == 20  # worst case: a path rooted at its end

    def test_chi_is_parent(self):
        t = make_tree(25, "random", seed=2)
        td = root_fixing_decomposition(t, root=0)
        for v in range(1, 25):
            assert td.chi(v) == (td.parent[v],)

    def test_invalid_root(self):
        with pytest.raises(ValueError, match="root"):
            root_fixing_decomposition(make_tree(4, "path"), root=9)


class TestBalancing:
    @pytest.mark.parametrize("n", [2, 5, 16, 33, 64, 127])
    def test_depth_logarithmic(self, n):
        t = make_tree(n, "path")
        td = balancing_decomposition(t)
        assert td.max_depth <= math.ceil(math.log2(n)) + 1

    def test_pivot_bounded_by_depth(self):
        t = make_tree(64, "random", seed=3)
        td = balancing_decomposition(t)
        # χ(z) ⊆ ancestors of z, so pivot ≤ depth - 1.
        assert td.pivot_size <= td.max_depth - 1

    def test_pivot_can_exceed_two(self):
        # On some trees the balancing decomposition's pivot exceeds 2 —
        # the weakness that motivates the ideal decomposition (§4.2).
        # (On paths every component has ≤ 2 neighbours, so the gap only
        # shows on branchier topologies like caterpillars.)
        t = make_tree(31, "caterpillar", seed=1)
        td = balancing_decomposition(t)
        assert td.pivot_size > 2


class TestIdeal:
    @pytest.mark.parametrize("topology", TREE_TOPOLOGIES)
    @pytest.mark.parametrize("n", [2, 3, 7, 16, 33, 100, 257])
    def test_lemma41_bounds(self, topology, n):
        t = make_tree(n, topology, seed=13)
        td = ideal_decomposition(t)
        check_tree_decomposition(td)
        assert td.pivot_size <= 2, f"θ > 2 on {topology} n={n}"
        assert td.max_depth <= 2 * math.ceil(math.log2(n)) + 1, (
            f"depth {td.max_depth} exceeds 2⌈log n⌉+1 on {topology} n={n}"
        )

    def test_pivot_matches_brute_force(self):
        t = make_tree(48, "random", seed=17)
        td = ideal_decomposition(t)
        for z in range(48):
            assert td.chi(z) == brute_force_chi(td, z)

    def test_depth_beats_root_fixing_on_paths(self):
        t = make_tree(256, "path")
        assert ideal_decomposition(t).max_depth < root_fixing_decomposition(t).max_depth

    def test_pivot_beats_balancing_where_it_matters(self):
        t = make_tree(31, "caterpillar", seed=1)
        assert ideal_decomposition(t).pivot_size < balancing_decomposition(t).pivot_size


class TestCapture:
    def test_capture_unique_min_depth(self, paper_tree):
        td = ideal_decomposition(paper_tree)
        check_tree_decomposition(td)
        for u in range(14):
            for v in range(14):
                if u == v:
                    continue
                z = td.capture(u, v)
                path = paper_tree.path_vertices(u, v)
                depths = [td.depth[x] for x in path]
                assert td.depth[z] == min(depths)
                # Uniqueness of the minimum (LCA property).
                assert depths.count(min(depths)) == 1

    def test_capture_is_h_lca(self):
        t = make_tree(30, "random", seed=23)
        td = ideal_decomposition(t)
        for u in range(0, 30, 3):
            for v in range(1, 30, 4):
                if u != v:
                    assert td.capture(u, v) == td.lca(u, v)


@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    topology=st.sampled_from(list(TREE_TOPOLOGIES)),
)
@settings(max_examples=60, deadline=None)
def test_ideal_decomposition_property(n, seed, topology):
    """Lemma 4.1 as a property: valid, θ ≤ 2, depth ≤ 2⌈log n⌉+1, always."""
    t = make_tree(n, topology, seed=seed)
    td = ideal_decomposition(t)
    check_tree_decomposition(td)
    assert td.pivot_size <= 2
    assert td.max_depth <= 2 * math.ceil(math.log2(n)) + 1


@given(
    n=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_balancing_decomposition_property(n, seed):
    t = make_tree(n, "random", seed=seed)
    td = balancing_decomposition(t)
    check_tree_decomposition(td)
    assert td.max_depth <= math.ceil(math.log2(n)) + 1
