"""The lint finding model and per-line noqa suppressions.

A :class:`Finding` is one rule violation pinned to ``file:line:col``.
Suppressions are per-line comments of the form ``repro: noqa`` with
the rule id in square brackets, a ``--`` separator, and a written
justification::

    risky_line()  # repro: noqa[DET001] -- ordering is re-sorted below

The justification after ``--`` is **mandatory**: a justification-free
noqa comment suppresses nothing and instead raises its own ``NOQA001``
finding, so every silenced warning in the tree documents why it is
safe.  Multiple rules may share one comment by separating the ids
with commas inside the brackets.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

__all__ = ["Finding", "Suppressions", "parse_suppressions"]

#: ``# repro: noqa[RULE,...] -- justification``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]\s*(?:--\s*(\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)


class Suppressions:
    """Per-line suppression table for one source file."""

    def __init__(self, by_line: dict, bad_lines: list):
        self._by_line = by_line
        self._bad_lines = bad_lines

    def covers(self, line: int, rule: str) -> bool:
        """True when ``rule`` is validly suppressed on ``line``."""
        return rule in self._by_line.get(line, ())

    def unjustified(self, path: str):
        """``NOQA001`` findings for every justification-free noqa."""
        for line in self._bad_lines:
            yield Finding(
                path=path, line=line, col=0, rule="NOQA001",
                message=("suppression is missing its justification: "
                         "write '# repro: noqa[RULE] -- why it is safe'"),
            )


def parse_suppressions(source: str) -> Suppressions:
    """Extract every noqa comment from ``source``, keyed by line.

    A noqa written on a statement line covers that line.  A noqa on a
    standalone comment line covers the next non-blank, non-comment
    line, so multi-line justifications can sit above the code they
    excuse without stretching it past the line-length budget.
    """
    lines = source.splitlines()
    by_line: dict = {}
    bad_lines: list = []
    for lineno, text in enumerate(lines, start=1):
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        if not m.group(2):
            bad_lines.append(lineno)
            continue
        rules = {part.strip() for part in m.group(1).split(",")
                 if part.strip()}
        target = lineno
        if text.lstrip().startswith("#"):
            for nxt in range(lineno, len(lines)):
                follow = lines[nxt].strip()
                if follow and not follow.startswith("#"):
                    target = nxt + 1
                    break
        by_line.setdefault(target, set()).update(rules)
    return Suppressions(by_line, bad_lines)
