"""E7 (Theorem 6.3 / Lemma 6.2): arbitrary heights on trees.

Measured ratios for the (80+ε) combined algorithm and its two halves —
wide-via-unit (7+ε against Opt₁) and narrow (73+ε against Opt₂) — across
height regimes.  Shape claims: all bounds hold; the combined solution is
never worse than either half restricted to its own population.
"""

from __future__ import annotations

from repro import (
    random_tree_problem,
    solve_optimal,
    solve_tree_arbitrary,
    solve_tree_narrow,
    solve_tree_unit,
)
from repro.core.solution import verify_tree_solution

from common import emit, geomean

EPS = 0.1
REGIMES = ["unit", "narrow", "wide", "mixed", "bimodal"]


def run_experiment():
    rows = []
    checks = []
    for regime in REGIMES:
        ratios, rounds = [], []
        for seed in range(3):
            p = random_tree_problem(n=20, m=14, r=2, seed=seed,
                                    height_regime=regime, hmin=0.1)
            sol = solve_tree_arbitrary(p, epsilon=EPS, seed=seed)
            verify_tree_solution(p, sol, unit_height=False)
            opt = solve_optimal(p)
            ratio = opt.profit / max(sol.profit, 1e-12)
            ratios.append(ratio)
            rounds.append(sol.stats["total_rounds"])
            checks.append((regime, ratio))
        rows.append([regime, geomean(ratios), max(ratios),
                     sum(rounds) / len(rounds)])

    # Narrow-only Lemma 6.2 on its own row.
    narrow_ratios = []
    for seed in range(3):
        p = random_tree_problem(n=20, m=14, r=1, seed=seed + 50,
                                height_regime="narrow", hmin=0.15)
        sol = solve_tree_narrow(p, epsilon=EPS, seed=seed)
        opt = solve_optimal(p)
        narrow_ratios.append(opt.profit / max(sol.profit, 1e-12))
    rows.append(["narrow-only (Lemma 6.2)", geomean(narrow_ratios),
                 max(narrow_ratios), "-"])

    emit(
        "E07",
        f"Theorem 6.3: tree arbitrary heights (80+ε), ε={EPS}",
        ["height regime", "OPT/ALG geo", "OPT/ALG max", "avg rounds"],
        rows,
        notes=(
            f"Paper bounds: combined ≤ 80/(1-ε) = {80/(1-EPS):.1f}; "
            f"narrow-only ≤ 73/(1-ε) = {73/(1-EPS):.1f}. Measured ratios "
            "should sit far below."
        ),
    )
    return checks, narrow_ratios


def test_thm63_tree_arbitrary_ratio(benchmark):
    checks, narrow_ratios = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    for regime, ratio in checks:
        assert ratio <= 80 / (1 - EPS) + 1e-6, regime
    assert all(r <= 73 / (1 - EPS) + 1e-6 for r in narrow_ratios)
    # Practical quality: geometric mean well under 4.
    assert geomean([r for _, r in checks]) < 4.0
