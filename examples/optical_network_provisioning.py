#!/usr/bin/env python
"""Optical network provisioning — the paper's motivating tree scenario.

A metro optical network is laid out as a tree of fibre spans.  Each
wavelength (colour) forms its own tree-network over the same sites —
here, r wavelengths over one physical topology.  A lightpath request
names two sites and a revenue; provisioning it claims the whole route on
one wavelength (unit-height / wavelength-exclusive case) — exactly the
throughput maximization problem on tree-networks.

We provision 60 requests over 4 wavelengths on a 48-site network with
the distributed (7+ε) algorithm, then compare to the exact optimum, a
revenue-greedy heuristic, and the LP upper bound, and report per-
wavelength utilisation.

Run:  python examples/optical_network_provisioning.py
"""

import numpy as np

from repro import (
    Demand,
    TreeProblem,
    lp_upper_bound,
    make_tree,
    solve_greedy,
    solve_optimal,
    solve_tree_unit,
    verify_tree_solution,
)

N_SITES = 48
N_WAVELENGTHS = 4
N_REQUESTS = 60
SEED = 2013  # IPDPS year


def build_network() -> TreeProblem:
    rng = np.random.default_rng(SEED)
    # One physical fibre tree; every wavelength sees the same topology.
    physical = make_tree(N_SITES, "caterpillar", seed=SEED)
    wavelengths = [
        # Same edges, distinct network ids (wavelengths are independent
        # resources; the model also allows differing trees per network).
        type(physical)(N_SITES, list(physical.edges), network_id=w)
        for w in range(N_WAVELENGTHS)
    ]
    demands = []
    for i in range(N_REQUESTS):
        u, v = rng.choice(N_SITES, size=2, replace=False)
        # Revenue grows with distance (longer lightpaths bill more).
        dist = physical.distance(int(u), int(v))
        revenue = float(dist) * float(rng.uniform(0.8, 1.2))
        demands.append(Demand(i, int(u), int(v), profit=revenue))
    # Transponders at each site support a random subset of wavelengths.
    access = []
    for _ in range(N_REQUESTS):
        k = int(rng.integers(2, N_WAVELENGTHS + 1))
        access.append(frozenset(rng.choice(N_WAVELENGTHS, size=k,
                                           replace=False).tolist()))
    return TreeProblem(n=N_SITES, networks=wavelengths, demands=demands,
                       access=access)


def utilisation(problem: TreeProblem, sol) -> dict[int, float]:
    """Fraction of fibre-edges claimed per wavelength."""
    per = {}
    for w, insts in sol.by_network().items():
        used = set()
        for d in insts:
            used.update(d.path_edges)
        per[w] = len(used) / (N_SITES - 1)
    return per


def main() -> None:
    problem = build_network()
    sol = solve_tree_unit(problem, epsilon=0.1, seed=SEED)
    verify_tree_solution(problem, sol)
    greedy = solve_greedy(problem, order="density")
    opt = solve_optimal(problem)
    lp = lp_upper_bound(problem)

    print(f"{N_REQUESTS} lightpath requests, {N_WAVELENGTHS} wavelengths, "
          f"{N_SITES} sites\n")
    print(f"{'method':<22}{'revenue':>10}{'accepted':>10}")
    print("-" * 42)
    for name, s in [("distributed (7+ε)", sol), ("greedy (density)", greedy),
                    ("exact optimum", opt)]:
        print(f"{name:<22}{s.profit:>10.1f}{s.size:>10}")
    print(f"{'LP upper bound':<22}{lp:>10.1f}")
    print(f"\nmeasured ratio OPT/ALG = {opt.profit / sol.profit:.3f} "
          f"(bound {sol.stats['approx_guarantee']:.2f})")
    print(f"distributed rounds     = {sol.stats['total_rounds']}")
    print("\nper-wavelength fibre utilisation (algorithm):")
    for w, frac in sorted(utilisation(problem, sol).items()):
        bar = "#" * int(40 * frac)
        print(f"  λ{w}: {frac:6.1%} {bar}")


if __name__ == "__main__":
    main()
