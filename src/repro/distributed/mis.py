"""Maximal independent set routines (the Time(MIS) primitive of Section 5).

Every step of the first phase computes an MIS of the conflict graph
induced on the currently-unsatisfied instances.  The paper plugs in
Luby's randomized algorithm [14] (``O(log N)`` rounds w.h.p.) or the
deterministic network-decomposition algorithm [17]; the distributed round
count multiplies by ``Time(MIS)``.

We provide

* :func:`luby_mis` — a faithful round-by-round simulation of Luby's
  algorithm: every active vertex draws a random mark; local minima join
  the MIS; they and their neighbours retire.  Returns the MIS *and* the
  number of rounds, which the engine adds to its round ledger.
* :func:`greedy_mis` — the sequential priority-greedy MIS (deterministic,
  1 unit of "rounds"); useful when an experiment only studies solution
  quality and wants speed and reproducibility.

Graphs are adjacency dicts ``{vertex: set(neighbours)}`` — the induced
conflict subgraphs produced by
:meth:`repro.core.conflict.ConflictIndex.subgraph`.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import numpy as np

__all__ = ["luby_mis", "greedy_mis", "priority_mis", "is_maximal_independent_set"]


def luby_mis(
    adj: Mapping[Hashable, set],
    rng: np.random.Generator,
) -> tuple[set, int]:
    """Luby's randomized MIS, simulated synchronously.

    Parameters
    ----------
    adj:
        Adjacency dict of the (symmetric) conflict graph.
    rng:
        Source of the random marks; seeding it makes runs reproducible.

    Returns
    -------
    (mis, rounds):
        The maximal independent set and the number of synchronous rounds
        the protocol took (one round per mark-exchange-and-retire phase,
        matching the paper's ``O(log N)`` accounting).
    """
    active: set = set(adj)
    mis: set = set()
    rounds = 0
    # Neighbour views restricted to active vertices, updated in place.
    nbrs: dict = {v: set(adj[v]) & active for v in active}
    while active:
        rounds += 1
        marks = {v: rng.random() for v in active}
        # Ties are broken by the vertex itself so the step is well-defined
        # even in the measure-zero event of equal marks.
        winners = {
            v
            for v in active
            if all((marks[v], v) < (marks[u], u) for u in nbrs[v])
        }
        mis |= winners
        retire = set(winners)
        for v in winners:
            retire |= nbrs[v]
        active -= retire
        for v in retire:
            for u in nbrs[v]:
                nbrs[u].discard(v)
            del nbrs[v]
    return mis, rounds


def greedy_mis(adj: Mapping[Hashable, set], priority=None) -> tuple[set, int]:
    """Sequential greedy MIS by ascending priority (default: vertex order).

    Deterministic stand-in for Luby when only solution quality matters.
    Equals the lexicographically-first MIS, which is also what the
    priority-based distributed protocol (static marks = vertex ids)
    converges to — the runtime/engine equivalence tests rely on this.
    Returns ``(mis, 1)`` — counted as a single round unit so the two MIS
    backends are interchangeable in the engine.
    """
    order = sorted(adj, key=priority) if priority is not None else sorted(adj)
    mis: set = set()
    blocked: set = set()
    for v in order:
        if v not in blocked:
            mis.add(v)
            blocked.add(v)
            blocked |= adj[v]
    return mis, 1


def is_maximal_independent_set(adj: Mapping[Hashable, set], mis: set) -> bool:
    """Verification helper: independence plus maximality."""
    for v in mis:
        if adj[v] & mis:
            return False
    for v in adj:
        if v not in mis and not (adj[v] & mis):
            return False
    return True


def priority_mis(adj: Mapping[Hashable, set]) -> tuple[set, int]:
    """Deterministic distributed MIS by static priorities (vertex order).

    Each round, every undecided vertex joins iff it beats all undecided
    neighbours; joined vertices' neighbours retire.  Converges to the
    lexicographically-first MIS (same output as :func:`greedy_mis`) and
    is exactly the subprotocol the agent-level runtime executes, so this
    backend makes the engine's per-step round count match the runtime's.

    The paper's deterministic option is the network-decomposition
    algorithm of Panconesi–Srinivasan [17] with ``2^O(√log N)`` rounds;
    this simpler protocol is deterministic but can take Θ(N) rounds on a
    monotone path — use it for reproducibility, not for round bounds.
    """
    status = {v: "undecided" for v in adj}
    rounds = 0
    undecided = set(adj)
    while undecided:
        rounds += 1
        joined = {
            v
            for v in undecided
            if all(
                status[u] != "undecided" or v < u for u in adj[v]
            )
        }
        if not joined:  # pragma: no cover - impossible: a global min exists
            raise RuntimeError("priority MIS made no progress")
        for v in joined:
            status[v] = "in"
        retired = set()
        for v in joined:
            for u in adj[v]:
                if status[u] == "undecided":
                    status[u] = "out"
                    retired.add(u)
        undecided -= joined | retired
    return {v for v, s in status.items() if s == "in"}, rounds
