"""Transport loops for :class:`~repro.service.AdmissionService`.

One request per line, one response per line — JSON both ways.  Two
transports:

* :func:`serve_stdio` — requests on stdin, responses on stdout (the
  ``repro serve`` default; trivially driveable from a shell pipe or a
  subprocess harness);
* :func:`serve_socket` — a single-client TCP loop (``repro serve
  --port``), same line protocol over the connection.

Both drain requests until the stream ends or a successful ``close``
request arrives; they never raise on malformed input — bad JSON and
domain errors come back as ``{"ok": false, ...}`` response lines, so
one broken client request cannot take the service (and its journal)
down with it.

High-throughput clients should prefer the batched ``feed`` op —
``{"op": "feed", "events": [{...}, ...]}`` — over per-event ``submit``
lines: one request line, one validation sweep and one journal commit
window cover the whole batch (see
:meth:`~repro.service.AdmissionService.feed_events`).
"""

from __future__ import annotations

import json
import socket
import sys

from .service import AdmissionService

__all__ = ["serve_lines", "serve_socket", "serve_stdio"]


def serve_lines(service: AdmissionService, lines, emit) -> dict | None:
    """The shared loop: JSON-decode each line, handle, emit the response.

    Returns the ``close`` response when one was served, else ``None``
    (the input stream ended first — the journal then carries whatever
    was applied, ready for ``repro resume``).
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            req = json.loads(line)
        except ValueError as exc:
            emit({"ok": False, "error": f"bad request JSON: {exc}"})
            continue
        if not isinstance(req, dict):
            emit({"ok": False, "error": "request must be a JSON object"})
            continue
        resp = service.handle(req)
        emit(resp)
        if resp.get("op") == "close" and resp.get("ok"):
            return resp
    return None


def serve_stdio(service: AdmissionService, infile=None,
                outfile=None) -> dict | None:
    """Serve line requests from ``infile`` (default stdin) to
    ``outfile`` (default stdout), flushing every response."""
    infile = sys.stdin if infile is None else infile
    outfile = sys.stdout if outfile is None else outfile

    def emit(doc: dict) -> None:
        outfile.write(json.dumps(doc) + "\n")
        outfile.flush()

    return serve_lines(service, infile, emit)


def serve_socket(service: AdmissionService, host: str = "127.0.0.1",
                 port: int = 0, *, announce=None) -> dict | None:
    """Serve one TCP client with the line protocol.

    ``port=0`` binds an ephemeral port; ``announce`` (a callable given
    the bound ``(host, port)``) runs before the blocking accept, so
    harnesses can discover where to connect.
    """
    with socket.create_server((host, port)) as server:
        if announce is not None:
            announce(server.getsockname()[:2])
        conn, _addr = server.accept()
        with conn:
            rfile = conn.makefile("r", encoding="utf-8")
            wfile = conn.makefile("w", encoding="utf-8")

            def emit(doc: dict) -> None:
                wfile.write(json.dumps(doc) + "\n")
                wfile.flush()

            return serve_lines(service, rfile, emit)
