"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one evaluable claim of the paper (DESIGN.md's
experiment index), prints its table, writes it to ``benchmarks/out/`` for
EXPERIMENTS.md, and asserts the claim's *shape* (who wins, which bound
holds) so that a green benchmark run is itself a validation pass.

pytest-benchmark integration: each experiment runs once inside
``benchmark.pedantic(..., rounds=1)`` so ``--benchmark-only`` executes it
and reports its wall-clock alongside.
"""

from __future__ import annotations

import os
from typing import Sequence

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def run_solver(name: str, problem, **kwargs):
    """Run a registry solver by name (the benchmark-facing dispatch).

    Thin wrapper over :func:`repro.algorithms.registry.solve`, so
    benchmarks reference algorithms by their stable registry names
    instead of importing constructors.
    """
    from repro.algorithms import registry

    return registry.solve(name, problem, **kwargs)


def run_jobs(jobs, processes: int | None = 1, cache_dir: str | None = None):
    """Run a job list through the parallel :class:`BatchRunner`.

    ``jobs`` are ``(problem, solver_name, params, seed)`` tuples or
    :class:`repro.runners.Job` objects; problems given as objects are
    serialised in-process.  Defaults to inline execution (deterministic)
    — pass ``processes=None`` to use every core.
    """
    from repro.io import problem_to_dict
    from repro.runners import BatchRunner, Job

    normalized = []
    for job in jobs:
        if isinstance(job, Job):
            normalized.append(job)
            continue
        problem, solver, params, seed = job
        if not isinstance(problem, (str, dict)):
            problem = problem_to_dict(problem)
        normalized.append(
            Job(problem=problem, solver=solver, params=dict(params), seed=seed)
        )
    return BatchRunner(processes=processes, cache_dir=cache_dir).run(normalized)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def emit(experiment: str, title: str, headers, rows, notes: str = "") -> str:
    """Print and persist one experiment table."""
    os.makedirs(OUT_DIR, exist_ok=True)
    table = format_table(headers, rows)
    text = f"# {experiment}: {title}\n{table}\n"
    if notes:
        text += f"\n{notes}\n"
    print("\n" + text)
    with open(os.path.join(OUT_DIR, f"{experiment}.txt"), "w") as fh:
        fh.write(text)
    return text


def geomean(values) -> float:
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
