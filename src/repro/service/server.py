"""Transport loops for :class:`~repro.service.AdmissionService`.

One request per line, one response per line — JSON both ways.  Three
transports:

* :func:`serve_stdio` — requests on stdin, responses on stdout (the
  ``repro serve`` default; trivially driveable from a shell pipe or a
  subprocess harness);
* :func:`serve_socket` — a **sequential** TCP loop (``repro serve
  --port``): one client at a time, but when a client disconnects the
  server goes back to accepting, so clients can reconnect in sequence
  until a ``close`` request or a SIGTERM/SIGINT ends the service;
* :class:`~repro.service.async_server.AsyncLineServer` — the
  **concurrent** path (``repro serve --port --async``): a
  single-threaded selectors loop multiplexing many simultaneous
  clients with per-connection buffers, backpressure and fair
  round-robin dispatch.  Use it whenever more than one client may be
  connected at once.

All transports drain requests until the stream ends or a successful
``close`` request arrives; they never raise on malformed input — bad
JSON and domain errors come back as ``{"ok": false, ...}`` response
lines, so one broken client request cannot take the service (and its
journal) down with it.  A request line longer than ``max_line_bytes``
is answered with a friendly ``{"ok": false}`` over-limit response
instead of being parsed.  On SIGTERM/SIGINT the socket transports
flush the journal's group-commit window before returning, so every
acknowledged event is on disk and ``repro resume`` picks up exactly
where the stream stopped.

High-throughput clients should prefer the batched ``feed`` op —
``{"op": "feed", "events": [{...}, ...]}`` — over per-event ``submit``
lines: one request line, one validation sweep and one journal commit
window cover the whole batch (see
:meth:`~repro.service.AdmissionService.feed_events`).
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading

from .service import AdmissionService

__all__ = ["serve_lines", "serve_socket", "serve_stdio"]

#: Default request-line byte cap (also the async server's default).
MAX_LINE_BYTES = 1 << 20


def _overlimit_response(limit: int) -> dict:
    return {
        "ok": False,
        "error": (f"request line exceeds {limit} bytes; "
                  "split the batch or raise --max-line-bytes"),
    }


def serve_lines(service: AdmissionService, lines, emit, *,
                max_line_bytes: int = MAX_LINE_BYTES) -> dict | None:
    """The shared loop: JSON-decode each line, handle, emit the response.

    Returns the ``close`` response when one was served, else ``None``
    (the input stream ended first — the journal then carries whatever
    was applied, ready for ``repro resume``).  Lines longer than
    ``max_line_bytes`` are rejected with an ``{"ok": false}`` response
    without being parsed.
    """
    for line in lines:
        if len(line) > max_line_bytes + 1:  # +1: the newline itself
            emit(_overlimit_response(max_line_bytes))
            continue
        line = line.strip()
        if not line:
            continue
        try:
            req = json.loads(line)
        except ValueError as exc:
            emit({"ok": False, "error": f"bad request JSON: {exc}"})
            continue
        if not isinstance(req, dict):
            emit({"ok": False, "error": "request must be a JSON object"})
            continue
        resp = service.handle(req)
        emit(resp)
        if resp.get("op") == "close" and resp.get("ok"):
            return resp
    return None


def serve_stdio(service: AdmissionService, infile=None, outfile=None, *,
                max_line_bytes: int = MAX_LINE_BYTES) -> dict | None:
    """Serve line requests from ``infile`` (default stdin) to
    ``outfile`` (default stdout), flushing every response."""
    infile = sys.stdin if infile is None else infile
    outfile = sys.stdout if outfile is None else outfile

    def emit(doc: dict) -> None:
        outfile.write(json.dumps(doc) + "\n")
        outfile.flush()

    return serve_lines(service, infile, emit,
                       max_line_bytes=max_line_bytes)


def serve_socket(service: AdmissionService, host: str = "127.0.0.1",
                 port: int = 0, *, announce=None,
                 max_line_bytes: int = MAX_LINE_BYTES) -> dict | None:
    """Serve TCP clients sequentially with the line protocol.

    One client is served at a time; when it disconnects the server
    accepts the next, so a harness can reconnect repeatedly against the
    same journaled session.  The loop ends on a successful ``close``
    request or on SIGTERM/SIGINT — either way the journal's
    group-commit window is flushed before returning, so everything
    acknowledged is durable and ``repro resume`` continues from the
    exact stream position.  For *simultaneous* clients use ``repro
    serve --async`` (:class:`~repro.service.async_server.
    AsyncLineServer`) instead.

    ``port=0`` binds an ephemeral port; ``announce`` (a callable given
    the bound ``(host, port)``) runs before the first accept, so
    harnesses can discover where to connect.
    """
    stop = threading.Event()
    restore: list[tuple[int, object]] = []
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                restore.append((sig, signal.signal(
                    sig, lambda *_: stop.set())))
            except (ValueError, OSError):
                pass
    try:
        with socket.create_server((host, port)) as server:
            if announce is not None:
                announce(server.getsockname()[:2])
            server.settimeout(0.2)  # poll the stop flag between accepts
            while not stop.is_set():
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with conn:
                    def emit(doc: dict) -> None:
                        conn.sendall((json.dumps(doc) + "\n").encode())

                    try:
                        resp = serve_lines(
                            service,
                            _socket_lines(conn, stop, max_line_bytes, emit),
                            emit, max_line_bytes=max_line_bytes)
                    except OSError:
                        resp = None  # client vanished mid-request
                    if resp is not None:
                        return resp
            # Signalled (or listener died): make everything acknowledged
            # durable before handing control back.
            if service.journal is not None and not service.session.closed:
                service.journal.commit()
            return None
    finally:
        for sig, old in restore:
            signal.signal(sig, old)


def _socket_lines(conn, stop, max_line_bytes, emit):
    """Yield request lines from ``conn``, polling ``stop`` so a signal
    interrupts a blocked read, and discarding (with an ``{"ok": false}``
    response) any line that outgrows ``max_line_bytes`` before its
    newline arrives."""
    conn.settimeout(0.2)
    buf = bytearray()
    overflow = False
    while True:
        nl = buf.find(b"\n")
        if nl >= 0:
            line = bytes(buf[:nl])
            del buf[:nl + 1]
            if overflow:
                overflow = False  # the newline ends the oversized line
                continue
            yield line.decode("utf-8", "replace")
            continue
        if overflow:
            buf.clear()
        elif len(buf) > max_line_bytes:
            overflow = True
            buf.clear()
            emit(_overlimit_response(max_line_bytes))
        if stop.is_set():
            return
        try:
            chunk = conn.recv(65536)
        except socket.timeout:
            continue
        except OSError:
            return
        if not chunk:
            return
        buf += chunk
