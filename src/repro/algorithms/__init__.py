"""Algorithms: the paper's distributed solvers, baselines, and exact optima."""

from . import registry
from .compile import compile_line, compile_tree
from .engine import EpochSchedule, PhaseOneEngine, PhaseTwoGreedy, StageRule
from .exact import brute_force_optimal, lp_upper_bound, solve_optimal
from .framework import (
    EngineConfig,
    EngineInput,
    EngineStats,
    TwoPhaseEngine,
    narrow_xi,
    stage_count,
    unit_xi,
)
from .greedy import solve_greedy
from .line_windows import solve_line_arbitrary, solve_line_narrow, solve_line_unit
from .panconesi_sozio import (
    solve_ps_baseline,
    solve_ps_line_arbitrary,
    solve_ps_line_unit,
)
from .sequential_tree import solve_sequential_tree
from .tree_arbitrary import (
    combine_by_network,
    solve_tree_arbitrary,
    solve_tree_narrow,
)
from .tree_unit import solve_tree_unit

__all__ = [
    "EngineConfig",
    "EngineInput",
    "EngineStats",
    "EpochSchedule",
    "PhaseOneEngine",
    "PhaseTwoGreedy",
    "StageRule",
    "TwoPhaseEngine",
    "brute_force_optimal",
    "combine_by_network",
    "compile_line",
    "compile_tree",
    "lp_upper_bound",
    "narrow_xi",
    "registry",
    "solve_greedy",
    "solve_line_arbitrary",
    "solve_line_narrow",
    "solve_line_unit",
    "solve_optimal",
    "solve_ps_baseline",
    "solve_ps_line_arbitrary",
    "solve_ps_line_unit",
    "solve_sequential_tree",
    "solve_tree_arbitrary",
    "solve_tree_narrow",
    "solve_tree_unit",
    "stage_count",
    "unit_xi",
]
